//! High-level simulation API.
//!
//! A simulation executes one procedure as a *schedule*: serial statement
//! spans run sequentially on one processor, and every scheduled region
//! runs speculatively under HOSE or CASE through the engine.
//! [`simulate_program`] executes a whole
//! [`LabeledProgram`] (discover →
//! label → schedule → **simulate**), reusing one pooled
//! [`EngineScratch`] across all regions and
//! reporting a per-region breakdown plus the serial/parallel split
//! ([`ProgramReport`]). [`simulate_region`] is the one-region special
//! case: a thin schedule whose serial spans are the statements around the
//! designated loop.
//!
//! The sequential baselines ([`run_sequential`] for one region,
//! [`run_program_sequential`] for a schedule) time the same code on one
//! processor with every access going to non-speculative storage — the
//! denominator of the speedups the paper reports, and the source of the
//! Amdahl-style *coverage* fraction of Section 6.

use crate::config::{SimConfig, SpecRuntime};
use crate::engine::{Engine, EngineScratch};
use crate::fault::DegradeReason;
use crate::report::{ProgramReport, SimReport, SpeedupComparison};
use refidem_analysis::classify::VarClass;
use refidem_core::cache::AnalysisTally;
use refidem_core::label::{LabeledProgram, LabeledRegion};
use refidem_ir::exec::{CountingStore, DataStore, DynCounts, ExecError, PlainStore, SegmentExec};
use refidem_ir::ids::RefId;
use refidem_ir::lowered::{
    fused::fuse, lower, lower_with_ranges, CacheLookup, ExecBackend, LowerKey, LowerUnit,
    LoweredSegmentExec,
};
use refidem_ir::memory::{Addr, Layout, Memory};
use refidem_ir::program::{Procedure, Program};
use refidem_ir::stmt::Stmt;
use refidem_ir::var::VarTable;

/// The execution model to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Hardware-only speculative execution (Definition 2): every reference
    /// is tracked in speculative storage.
    Hose,
    /// Compiler-assisted speculative execution (Definition 4): idempotent
    /// references bypass speculative storage.
    Case,
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecMode::Hose => write!(f, "HOSE"),
            ExecMode::Case => write!(f, "CASE"),
        }
    }
}

/// Errors produced by the simulator.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The labeled region's procedure or loop could not be resolved.
    Region(String),
    /// The region loop's bounds are not compile-time constants (the
    /// simulator needs to enumerate the segments).
    RegionBoundsNotConstant,
    /// The underlying interpreter failed.
    Exec(ExecError),
    /// No segment could make progress (internal invariant violation).
    Deadlock,
    /// The configured statement budget was exhausted.
    StatementBudgetExceeded,
    /// One segment exhausted the governor's per-segment restart budget
    /// (degradable: the run-level pipeline re-executes the region
    /// sequentially when [`Governor::degrade_serially`](crate::Governor)
    /// is set).
    RestartBudget {
        /// The segment that kept restarting.
        segment: usize,
        /// Its restart count when the budget tripped.
        restarts: u32,
    },
    /// The region exhausted the governor's rollback budget (degradable).
    RollbackBudget {
        /// The region's rollback count when the budget tripped.
        rollbacks: u64,
    },
    /// The governor's livelock watchdog fired: too many statements
    /// executed without a segment committing (degradable).
    Livelock {
        /// Statements executed since the last commit.
        statements: u64,
    },
    /// A [`FaultPlan`](crate::FaultPlan) injected a typed failure at this
    /// segment (not degradable — an injected hard failure is meant to
    /// surface).
    Injected {
        /// The segment whose dispatch was failed.
        segment: usize,
    },
    /// A segment worker panicked; the runtime captured the panic instead
    /// of letting it propagate, preserving the worker's identity (not
    /// degradable).
    WorkerPanic {
        /// Index of the worker (processor) that panicked.
        thread: usize,
        /// The segment it was executing, if it had claimed one.
        segment: Option<usize>,
        /// Total segments of the region, for context.
        segments: usize,
        /// The panic payload, rendered.
        message: String,
    },
}

impl SimError {
    /// If this error is a tripped degradation budget, the corresponding
    /// [`DegradeReason`] — the run-level pipeline uses this to decide
    /// whether a failed region run may fall back to sequential
    /// re-execution. Injected failures, worker panics and the global
    /// statement budget are *not* degradable: they indicate a fault that
    /// is meant to surface, not bounded misspeculation.
    pub fn degrade_reason(&self) -> Option<DegradeReason> {
        match *self {
            SimError::RestartBudget { segment, restarts } => {
                Some(DegradeReason::RestartBudget { segment, restarts })
            }
            SimError::RollbackBudget { rollbacks } => {
                Some(DegradeReason::RollbackBudget { rollbacks })
            }
            SimError::Livelock { statements } => Some(DegradeReason::Livelock { statements }),
            _ => None,
        }
    }

    /// Whether [`SimError::degrade_reason`] is `Some`.
    pub fn is_degradable(&self) -> bool {
        self.degrade_reason().is_some()
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Region(s) => write!(f, "region error: {s}"),
            SimError::RegionBoundsNotConstant => {
                write!(f, "region loop bounds are not compile-time constants")
            }
            SimError::Exec(e) => write!(f, "execution error: {e}"),
            SimError::Deadlock => write!(f, "no segment can make progress"),
            SimError::StatementBudgetExceeded => write!(f, "statement budget exceeded"),
            SimError::RestartBudget { segment, restarts } => write!(
                f,
                "segment {segment} exhausted its restart budget ({restarts} restarts)"
            ),
            SimError::RollbackBudget { rollbacks } => write!(
                f,
                "region exhausted its rollback budget ({rollbacks} rollbacks)"
            ),
            SimError::Livelock { statements } => write!(
                f,
                "livelock watchdog: {statements} statements without a commit"
            ),
            SimError::Injected { segment } => write!(f, "injected fault at segment {segment}"),
            SimError::WorkerPanic {
                thread,
                segment,
                segments,
                message,
            } => match segment {
                Some(seg) => write!(
                    f,
                    "segment thread {thread} (segment {seg} of {segments}) panicked: {message}"
                ),
                None => write!(f, "segment thread {thread} panicked: {message}"),
            },
        }
    }
}

impl std::error::Error for SimError {}

/// The result of one simulated execution.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// Region execution statistics.
    pub report: SimReport,
    /// Final non-speculative memory (after the whole procedure ran).
    pub memory: Memory,
}

/// The result of the sequential baseline execution.
#[derive(Clone, Debug)]
pub struct SeqOutcome {
    /// Final memory.
    pub memory: Memory,
    /// Cycles spent in the region on one processor.
    pub region_cycles: u64,
    /// Dynamic per-site access counts inside the region.
    pub region_counts: DynCounts,
}

/// The result of one whole-program simulation ([`simulate_program`]).
#[derive(Clone, Debug)]
pub struct ProgramOutcome {
    /// Per-region statistics plus the serial/parallel cycle breakdown.
    pub report: ProgramReport,
    /// Final non-speculative memory (after the whole procedure ran).
    pub memory: Memory,
}

/// The result of the whole-program sequential baseline
/// ([`run_program_sequential`]).
#[derive(Clone, Debug)]
pub struct SeqProgramOutcome {
    /// Final memory.
    pub memory: Memory,
    /// Cycles spent in the serial spans on one processor.
    pub serial_cycles: u64,
    /// Cycles spent in each scheduled region, in schedule order.
    pub region_cycles: Vec<u64>,
    /// Dynamic per-site access counts inside each region, in schedule
    /// order.
    pub region_counts: Vec<DynCounts>,
    /// Whole-program cycles (`serial_cycles` + every region).
    pub total_cycles: u64,
}

impl SeqProgramOutcome {
    /// The Amdahl-style coverage fraction of Section 6: the share of the
    /// sequential execution spent inside speculative regions (0 for a
    /// serial-only program).
    pub fn coverage_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.region_cycles.iter().sum::<u64>() as f64 / self.total_cycles as f64
        }
    }
}

/// Deterministic initial memory for a procedure: every word gets a small
/// pseudo-random value derived from its address, so executions are
/// reproducible without any setup code.
pub fn initial_memory(proc: &Procedure) -> Memory {
    initial_memory_with_layout(&Layout::new(&proc.vars))
}

/// [`initial_memory`] for a layout that has already been built.
pub fn initial_memory_with_layout(layout: &Layout) -> Memory {
    Memory::init_with(layout, |addr| {
        let h = addr.0.wrapping_mul(2654435761).wrapping_add(12345) % 1009;
        (h as f64) / 251.0
    })
}

fn resolve<'a>(
    program: &'a Program,
    labeled: &LabeledRegion,
) -> Result<(&'a Procedure, &'a VarTable, Layout), SimError> {
    let proc = program
        .procedures
        .get(labeled.analysis.spec.proc.index())
        .ok_or_else(|| SimError::Region("procedure not found".to_string()))?;
    let layout = Layout::new(&proc.vars);
    Ok((proc, &proc.vars, layout))
}

fn region_iteration_values(
    vars: &VarTable,
    region: &refidem_ir::stmt::LoopStmt,
) -> Result<Vec<i64>, SimError> {
    let lower = region.lower.substitute_params(&|v| vars.param_value(v));
    let upper = region.upper.substitute_params(&|v| vars.param_value(v));
    if !lower.is_constant() || !upper.is_constant() {
        return Err(SimError::RegionBoundsNotConstant);
    }
    let (lo, hi, step) = (lower.constant, upper.constant, region.step);
    let mut values = Vec::new();
    let mut k = lo;
    loop {
        if (step > 0 && k > hi) || (step < 0 && k < hi) {
            break;
        }
        values.push(k);
        k += step;
        if values.len() > 10_000_000 {
            return Err(SimError::Region("region trip count too large".to_string()));
        }
    }
    Ok(values)
}

/// Heat selection for the fused tier: a region is *hot* when the fused
/// backend is active, the loop is a plain counted DO (no WHILE
/// condition), its bounds are compile-time constants after parameter
/// substitution, and the trip count reaches the config's
/// [`fuse_min_trips`](SimConfig::fuse_min_trips) threshold. Cold regions
/// — and every region under the non-fused backends — run plain bytecode
/// under the classic cache keys, so the two tiers never alias a cache
/// entry.
fn region_is_hot(cfg: &SimConfig, vars: &VarTable, region: &refidem_ir::stmt::LoopStmt) -> bool {
    if cfg.backend != ExecBackend::Fused || region.while_cond.is_some() {
        return false;
    }
    let lower = region.lower.substitute_params(&|v| vars.param_value(v));
    let upper = region.upper.substitute_params(&|v| vars.param_value(v));
    if !lower.is_constant() || !upper.is_constant() {
        return false;
    }
    refidem_ir::stmt::LoopStmt::trip_count(lower.constant, upper.constant, region.step)
        >= cfg.fuse_min_trips
}

/// Per-run tally of compilation-cache queries, copied into
/// [`SimReport::lowering_cache_hits`] / `_misses` / `_evictions` at the
/// end of a simulation. Counting per [`CacheLookup`] outcome (rather than
/// diffing the shared cache's lifetime counters) keeps the attribution
/// exact even when concurrent sweep workers share one cache.
#[derive(Clone, Copy, Debug, Default)]
struct CacheTally {
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl CacheTally {
    fn count(&mut self, outcome: &CacheLookup) {
        if outcome.hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        self.evictions += outcome.evicted;
    }
}

/// Statement budget of the sequential (non-engine) portions of a run.
const SEQ_STEP_BUDGET: usize = 200_000_000;

fn run_stmts_plain(
    vars: &VarTable,
    layout: &Layout,
    stmts: &[refidem_ir::stmt::Stmt],
    memory: &mut Memory,
    cfg: &SimConfig,
    key: LowerKey,
    tally: &mut CacheTally,
) -> Result<(), SimError> {
    if stmts.is_empty() {
        return Ok(());
    }
    let mut store = PlainStore::new(memory);
    match cfg.backend {
        // Serial statement spans are never regions, so the fused tier runs
        // them as plain bytecode and shares the lowered tier's cache keys.
        ExecBackend::Lowered | ExecBackend::Fused => {
            let outcome = cfg.cache.lookup(key, || lower(vars, layout, stmts));
            tally.count(&outcome);
            LoweredSegmentExec::new(&outcome.proc, &[])
                .run(&mut store, SEQ_STEP_BUDGET)
                .map_err(SimError::Exec)
        }
        ExecBackend::TreeWalk => SegmentExec::new(vars, layout, stmts, &[])
            .run(&mut store, SEQ_STEP_BUDGET)
            .map_err(SimError::Exec),
    }
}

/// Runs the labeled region's procedure fully sequentially, timing the region
/// with the non-speculative latency of `cfg` and collecting dynamic
/// reference counts inside the region.
pub fn run_sequential(
    program: &Program,
    labeled: &LabeledRegion,
    cfg: &SimConfig,
) -> Result<SeqOutcome, SimError> {
    let (proc, vars, layout) = resolve(program, labeled)?;
    let label = &labeled.analysis.spec.loop_label;
    let (before, region, after) = proc
        .split_at_loop(label)
        .ok_or_else(|| SimError::Region(format!("region `{label}` is not a top-level loop")))?;
    let mut memory = initial_memory_with_layout(&layout);
    // The sequential baseline still compiles through the cache, but its
    // outcome has no statistics report to surface the traffic on — the
    // tally is deliberately discarded ([`SimReport`]'s counters cover the
    // speculative runs, which is where sweeps spend their time).
    let mut tally = CacheTally::default();
    run_stmts_plain(
        vars,
        &layout,
        before,
        &mut memory,
        cfg,
        LowerKey::new(proc, label, LowerUnit::Prologue),
        &mut tally,
    )?;
    // Time the region on one processor: every access costs `lat_nonspec`
    // and every statement unit `stmt_cost`, so the cycle count follows
    // directly from the dynamic counts — no separate timing store needed.
    let (region_cycles, counts) = {
        let mut store = CountingStore::new(PlainStore::new(&mut memory));
        let region_stmt = std::slice::from_ref(
            proc.body
                .iter()
                .find(|s| matches!(s, refidem_ir::stmt::Stmt::Loop(l) if l.label.as_deref() == Some(label.as_str())))
                .expect("region loop present"),
        );
        let steps = match cfg.backend {
            ExecBackend::Lowered | ExecBackend::Fused => {
                let hot = matches!(&region_stmt[0], Stmt::Loop(l) if region_is_hot(cfg, vars, l));
                let unit = if hot {
                    LowerUnit::FusedRegionLoop
                } else {
                    LowerUnit::RegionLoop
                };
                let outcome = cfg.cache.lookup(LowerKey::new(proc, label, unit), || {
                    let base = lower(vars, &layout, region_stmt);
                    if hot {
                        fuse(&base)
                    } else {
                        base
                    }
                });
                tally.count(&outcome);
                let mut exec = LoweredSegmentExec::new(&outcome.proc, &[]);
                exec.run(&mut store, cfg.max_statements as usize)
                    .map_err(SimError::Exec)?;
                exec.steps()
            }
            ExecBackend::TreeWalk => {
                let mut exec = SegmentExec::new(vars, &layout, region_stmt, &[]);
                exec.run(&mut store, cfg.max_statements as usize)
                    .map_err(SimError::Exec)?;
                exec.steps()
            }
        };
        let accesses: u64 = store.counts.values().map(|(r, w)| r + w).sum();
        (
            accesses * cfg.lat_nonspec + steps as u64 * cfg.stmt_cost,
            store.counts,
        )
    };
    let _ = region;
    run_stmts_plain(
        vars,
        &layout,
        after,
        &mut memory,
        cfg,
        LowerKey::new(proc, label, LowerUnit::Epilogue),
        &mut tally,
    )?;
    Ok(SeqOutcome {
        memory,
        region_cycles,
        region_counts: counts,
    })
}

/// A [`PlainStore`] that additionally tallies the number of accesses, so
/// serial spans can be *timed* (accesses × non-speculative latency +
/// statement units × statement cost — the same accounting the sequential
/// region baseline uses) without collecting per-site counts.
struct TallyStore<'m> {
    inner: PlainStore<'m>,
    accesses: u64,
}

impl DataStore for TallyStore<'_> {
    fn read(&mut self, site: RefId, addr: Addr) -> f64 {
        self.accesses += 1;
        self.inner.read(site, addr)
    }

    fn write(&mut self, site: RefId, addr: Addr, value: f64) {
        self.accesses += 1;
        self.inner.write(site, addr, value);
    }
}

/// Runs one serial statement span on one processor and returns its cycle
/// cost.
fn run_serial_span(
    vars: &VarTable,
    layout: &Layout,
    stmts: &[Stmt],
    memory: &mut Memory,
    cfg: &SimConfig,
    key: LowerKey,
    tally: &mut CacheTally,
) -> Result<u64, SimError> {
    if stmts.is_empty() {
        return Ok(0);
    }
    let mut store = TallyStore {
        inner: PlainStore::new(memory),
        accesses: 0,
    };
    let steps = match cfg.backend {
        // Serial spans stay on the plain tier under the fused backend too
        // (see `run_stmts_plain`).
        ExecBackend::Lowered | ExecBackend::Fused => {
            let outcome = cfg.cache.lookup(key, || lower(vars, layout, stmts));
            tally.count(&outcome);
            let mut exec = LoweredSegmentExec::new(&outcome.proc, &[]);
            exec.run(&mut store, SEQ_STEP_BUDGET)
                .map_err(SimError::Exec)?;
            exec.steps()
        }
        ExecBackend::TreeWalk => {
            let mut exec = SegmentExec::new(vars, layout, stmts, &[]);
            exec.run(&mut store, SEQ_STEP_BUDGET)
                .map_err(SimError::Exec)?;
            exec.steps()
        }
    };
    Ok(store.accesses * cfg.lat_nonspec + steps as u64 * cfg.stmt_cost)
}

/// The serial fallback: re-executes one region's whole loop sequentially
/// after its speculative run exhausted a degradation budget, and reports
/// it as a degraded region. This is the same execution (and the same
/// [`LowerUnit::RegionLoop`] cache entry) the sequential baseline
/// performs, so the resulting memory is byte-identical to the oracle by
/// construction — the guarantee that keeps chaos campaigns exact even at
/// 100% injected misspeculation.
#[allow(clippy::too_many_arguments)]
fn run_region_serially(
    proc: &Procedure,
    layout: &Layout,
    stmt_index: usize,
    label: &str,
    mode: ExecMode,
    cfg: &SimConfig,
    segments: usize,
    reason: DegradeReason,
    memory: &mut Memory,
    tally: &mut CacheTally,
) -> Result<SimReport, SimError> {
    let vars = &proc.vars;
    let region_stmt = std::slice::from_ref(&proc.body[stmt_index]);
    let mut store = TallyStore {
        inner: PlainStore::new(memory),
        accesses: 0,
    };
    let steps = match cfg.backend {
        // The fallback picks the exact tier (and cache entry) the
        // sequential baseline would, so degraded memory stays
        // byte-identical to the oracle by construction.
        ExecBackend::Lowered | ExecBackend::Fused => {
            let hot = matches!(&region_stmt[0], Stmt::Loop(l) if region_is_hot(cfg, vars, l));
            let unit = if hot {
                LowerUnit::FusedRegionLoop
            } else {
                LowerUnit::RegionLoop
            };
            let outcome = cfg.cache.lookup(LowerKey::new(proc, label, unit), || {
                let base = lower(vars, layout, region_stmt);
                if hot {
                    fuse(&base)
                } else {
                    base
                }
            });
            tally.count(&outcome);
            let mut exec = LoweredSegmentExec::new(&outcome.proc, &[]);
            exec.run(&mut store, cfg.max_statements as usize)
                .map_err(SimError::Exec)?;
            exec.steps()
        }
        ExecBackend::TreeWalk => {
            let mut exec = SegmentExec::new(vars, layout, region_stmt, &[]);
            exec.run(&mut store, cfg.max_statements as usize)
                .map_err(SimError::Exec)?;
            exec.steps()
        }
    };
    Ok(SimReport {
        mode: Some(mode),
        segments,
        commits: segments as u64,
        region_cycles: store.accesses * cfg.lat_nonspec + steps as u64 * cfg.stmt_cost,
        statements: steps as u64,
        degraded: Some(reason),
        ..Default::default()
    })
}

/// The cache key of the serial span preceding region `i` of a schedule
/// (or trailing the last region / covering a region-free body).
/// `span_start` is the span's starting index in the procedure body.
///
/// The leading span (everything before the first region) and the trailing
/// span (everything after the last) carry the classic single-region
/// `Prologue`/`Epilogue` keys — they cover exactly the statements those
/// keys always covered, so a thin one-region schedule, the whole-program
/// schedule and `run_sequential` all share those entries. An *interior*
/// gap between two regions covers a statement list no single-region split
/// ever compiles (a one-region prologue reaches back to the procedure
/// start, through any earlier region loops), so it gets its own
/// [`LowerUnit::SerialSpan`] key, pinned by the span's start index —
/// sharing the label-keyed `Prologue` entry would serve whichever caller
/// came second the wrong bytecode.
fn serial_span_key(
    proc: &Procedure,
    regions: &[(usize, &LabeledRegion)],
    i: usize,
    span_start: usize,
) -> LowerKey {
    if regions.is_empty() {
        LowerKey::new(proc, "", LowerUnit::WholeProcedure)
    } else if i == 0 {
        let label = &regions[0].1.analysis.spec.loop_label;
        LowerKey::new(proc, label.as_str(), LowerUnit::Prologue)
    } else if i == regions.len() {
        let label = &regions[regions.len() - 1].1.analysis.spec.loop_label;
        LowerKey::new(proc, label.as_str(), LowerUnit::Epilogue)
    } else {
        LowerKey::new(proc, "", LowerUnit::SerialSpan(span_start))
    }
}

/// Resolves region `i`'s top-level loop statement from its body index.
fn schedule_loop<'p>(
    proc: &'p Procedure,
    stmt_index: usize,
    label: &str,
) -> Result<&'p refidem_ir::stmt::LoopStmt, SimError> {
    match proc.body.get(stmt_index) {
        Some(Stmt::Loop(l)) if l.label.as_deref() == Some(label) => Ok(l),
        _ => Err(SimError::Region(format!(
            "region `{label}` is not a top-level loop"
        ))),
    }
}

/// Executes a whole schedule: serial spans sequentially, every region
/// speculatively through the engine, one pooled [`EngineScratch`] across
/// all regions. `regions` pairs each labeled region with its top-level
/// body index, in program order.
fn simulate_schedule(
    proc: &Procedure,
    layout: &Layout,
    regions: &[(usize, &LabeledRegion)],
    mode: ExecMode,
    cfg: &SimConfig,
) -> Result<(ProgramReport, Memory), SimError> {
    let vars = &proc.vars;
    let mut memory = initial_memory_with_layout(layout);
    let mut scratch = if cfg.pool_scratch {
        cfg.scratch.take()
    } else {
        EngineScratch::new()
    };
    let mut serial_tally = CacheTally::default();
    let mut report = ProgramReport::default();
    let mut cursor = 0usize;
    for (i, (stmt_index, labeled)) in regions.iter().enumerate() {
        report.serial_cycles += run_serial_span(
            vars,
            layout,
            &proc.body[cursor..*stmt_index],
            &mut memory,
            cfg,
            serial_span_key(proc, regions, i, cursor),
            &mut serial_tally,
        )?;
        cursor = stmt_index + 1;
        let label = &labeled.analysis.spec.loop_label;
        let region = schedule_loop(proc, *stmt_index, label)?;
        let iter_values = region_iteration_values(vars, region)?;
        // Compile the region body once per *process* (the config's cache
        // is shared, keyed by procedure identity + region label): every
        // segment, every re-execution after a roll-back, every capacity
        // point of a sweep and every repeated call replays the same
        // bytecode. The region index's value interval is supplied so
        // subscripts mentioning it can be proven in bounds and fused to
        // flat affine addresses; the interval derives from the region
        // loop's constant bounds, so it is the same for every call that
        // shares the cache key.
        let mut region_tally = CacheTally::default();
        let lowered = match cfg.backend {
            ExecBackend::Lowered | ExecBackend::Fused => {
                let index_ranges: Vec<_> =
                    match (iter_values.iter().min(), iter_values.iter().max()) {
                        (Some(&lo), Some(&hi)) => vec![(region.index, (lo, hi))],
                        _ => Vec::new(),
                    };
                // Heat-select the tier: hot regions compile their segment
                // body through `fuse` under a fused-tier key; cold regions
                // share the plain tier's entry.
                let hot = region_is_hot(cfg, vars, region);
                let unit = if hot {
                    LowerUnit::FusedRegionBody
                } else {
                    LowerUnit::RegionBody
                };
                let outcome = cfg
                    .cache
                    .lookup(LowerKey::new(proc, label.as_str(), unit), || {
                        let base = lower_with_ranges(vars, layout, &region.body, &index_ranges);
                        if hot {
                            fuse(&base)
                        } else {
                            base
                        }
                    });
                region_tally.count(&outcome);
                Some(outcome.proc)
            }
            ExecBackend::TreeWalk => None,
        };
        let segments = iter_values.len();
        // Arm the serial fallback: under the in-place simulator a failed
        // run has already committed earlier segments and written through
        // overflows, so degradation needs a pre-region snapshot to rewind
        // to. The real-thread runtime only writes memory back on success,
        // so its failures leave memory untouched and need no snapshot.
        let degrade_armed = cfg.governor.degrade_serially;
        let snapshot =
            (degrade_armed && cfg.runtime == SpecRuntime::Simulated).then(|| memory.clone());
        let run_result = match cfg.runtime {
            SpecRuntime::Simulated => Engine::new(
                cfg,
                mode,
                &labeled.labeling,
                vars,
                layout,
                region,
                lowered.as_deref(),
                iter_values,
                &mut scratch,
                &mut memory,
            )
            .run(),
            SpecRuntime::Threads => crate::parallel::run_region(
                cfg,
                mode,
                &labeled.labeling,
                vars,
                layout,
                region,
                lowered.as_deref(),
                iter_values,
                &mut memory,
            ),
        };
        let mut region_report = match run_result {
            Ok(r) => r,
            Err(err) => match err.degrade_reason() {
                Some(reason) if degrade_armed => {
                    if let Some(snap) = snapshot {
                        memory = snap;
                    }
                    // The aborted engine may have left dependence-mask
                    // marks set; a degraded schedule continues on fresh
                    // scratch rather than parking the dirty one.
                    scratch = EngineScratch::new();
                    run_region_serially(
                        proc,
                        layout,
                        *stmt_index,
                        label.as_str(),
                        mode,
                        cfg,
                        segments,
                        reason,
                        &mut memory,
                        &mut region_tally,
                    )?
                }
                _ => return Err(err),
            },
        };
        region_report.lowering_cache_hits = region_tally.hits;
        region_report.lowering_cache_misses = region_tally.misses;
        region_report.lowering_cache_evictions = region_tally.evictions;
        report.lowering_cache_hits += region_tally.hits;
        report.lowering_cache_misses += region_tally.misses;
        report.lowering_cache_evictions += region_tally.evictions;
        report.regions.push(region_report);
    }
    report.serial_cycles += run_serial_span(
        vars,
        layout,
        &proc.body[cursor..],
        &mut memory,
        cfg,
        serial_span_key(proc, regions, regions.len(), cursor),
        &mut serial_tally,
    )?;
    report.lowering_cache_hits += serial_tally.hits;
    report.lowering_cache_misses += serial_tally.misses;
    report.lowering_cache_evictions += serial_tally.evictions;
    report.total_cycles = report.serial_cycles + report.parallel_cycles();
    // Only a *successful* run returns its scratch to the config's pool:
    // an errored engine may leave dependence-mask marks set.
    if cfg.pool_scratch {
        cfg.scratch.restore(scratch);
    }
    Ok((report, memory))
}

/// Simulates a whole labeled program under the given execution model:
/// serial spans execute sequentially, every scheduled region runs through
/// the speculation engine, and the report carries the per-region
/// statistics plus the serial/parallel cycle breakdown and coverage
/// fraction.
pub fn simulate_program(
    program: &Program,
    labeled: &LabeledProgram,
    mode: ExecMode,
    cfg: &SimConfig,
) -> Result<ProgramOutcome, SimError> {
    let proc = program
        .procedures
        .get(labeled.proc.index())
        .ok_or_else(|| SimError::Region("procedure not found".to_string()))?;
    let layout = Layout::new(&proc.vars);
    let regions: Vec<(usize, &LabeledRegion)> = labeled
        .schedule
        .regions
        .iter()
        .zip(&labeled.regions)
        .map(|(d, lr)| (d.stmt_index, lr))
        .collect();
    let (report, memory) = simulate_schedule(proc, &layout, &regions, mode, cfg)?;
    Ok(ProgramOutcome { report, memory })
}

/// Simulates the labeled region under the given execution model — a thin
/// one-region schedule: the statements around the designated loop are the
/// schedule's serial spans, the loop is its only region.
pub fn simulate_region(
    program: &Program,
    labeled: &LabeledRegion,
    mode: ExecMode,
    cfg: &SimConfig,
) -> Result<SimOutcome, SimError> {
    let (proc, _vars, layout) = resolve(program, labeled)?;
    let label = &labeled.analysis.spec.loop_label;
    let stmt_index = proc
        .body
        .iter()
        .position(|s| matches!(s, Stmt::Loop(l) if l.label.as_deref() == Some(label.as_str())))
        .ok_or_else(|| SimError::Region(format!("region `{label}` is not a top-level loop")))?;
    let (program_report, memory) =
        simulate_schedule(proc, &layout, &[(stmt_index, labeled)], mode, cfg)?;
    let mut report = program_report
        .regions
        .into_iter()
        .next()
        .expect("one scheduled region");
    // Single-region reports historically carried the whole run's cache
    // traffic (prologue + region body + epilogue); keep that contract.
    report.lowering_cache_hits = program_report.lowering_cache_hits;
    report.lowering_cache_misses = program_report.lowering_cache_misses;
    report.lowering_cache_evictions = program_report.lowering_cache_evictions;
    Ok(SimOutcome { report, memory })
}

/// Labels every region of `proc` through the config's
/// [`AnalysisCache`](refidem_core::cache::AnalysisCache) — the cached
/// counterpart of [`label_program`](refidem_core::label::label_program),
/// at simulator error granularity. The returned
/// [`AnalysisTally`] attributes exactly this call's cache traffic (one
/// lookup per discovered region), which the cached simulation entry
/// points stamp onto their reports.
pub fn label_program_cached(
    program: &Program,
    proc: refidem_ir::ids::ProcId,
    cfg: &SimConfig,
) -> Result<(LabeledProgram, AnalysisTally), SimError> {
    cfg.analysis_cache
        .label_program_cached(program, proc)
        .map_err(|e| SimError::Region(e.to_string()))
}

/// Simulates a whole program under `mode`, labeling every region through
/// the config's analysis cache first: discover → label (**cached**) →
/// schedule → simulate. Beyond [`simulate_program`], the report's
/// `analysis_cache_{hits,misses,evictions}` counters carry this call's
/// attributed analysis-cache traffic — on the first simulation of a
/// program each region misses once; every further mode, capacity point or
/// repetition sharing the cache hits instead of re-analyzing.
pub fn simulate_program_cached(
    program: &Program,
    proc: refidem_ir::ids::ProcId,
    mode: ExecMode,
    cfg: &SimConfig,
) -> Result<ProgramOutcome, SimError> {
    let (labeled, tally) = label_program_cached(program, proc, cfg)?;
    let mut out = simulate_program(program, &labeled, mode, cfg)?;
    out.report.analysis_cache_hits = tally.hits;
    out.report.analysis_cache_misses = tally.misses;
    out.report.analysis_cache_evictions = tally.evictions;
    Ok(out)
}

/// Simulates the region whose loop label is `label` under `mode`,
/// obtaining the labeling through the config's analysis cache — the
/// cached counterpart of label-by-name + [`simulate_region`]. The
/// report's `analysis_cache_*` counters carry this call's single lookup
/// (a miss the first time a (procedure, region) pair is seen, a hit
/// afterwards).
pub fn simulate_region_cached(
    program: &Program,
    label: &str,
    mode: ExecMode,
    cfg: &SimConfig,
) -> Result<SimOutcome, SimError> {
    let lookup = cfg
        .analysis_cache
        .label_region_by_name_cached(program, label)
        .map_err(|e| SimError::Region(e.to_string()))?;
    let mut tally = AnalysisTally::default();
    tally.count(&lookup);
    let mut out = simulate_region(program, &lookup.region, mode, cfg)?;
    out.report.analysis_cache_hits = tally.hits;
    out.report.analysis_cache_misses = tally.misses;
    out.report.analysis_cache_evictions = tally.evictions;
    Ok(out)
}

/// Runs a whole labeled program fully sequentially on one processor,
/// timing the serial spans and every region separately (the denominator
/// of whole-program speedups, and the source of the sequential coverage
/// fraction) and collecting per-region dynamic reference counts.
pub fn run_program_sequential(
    program: &Program,
    labeled: &LabeledProgram,
    cfg: &SimConfig,
) -> Result<SeqProgramOutcome, SimError> {
    let proc = program
        .procedures
        .get(labeled.proc.index())
        .ok_or_else(|| SimError::Region("procedure not found".to_string()))?;
    let vars = &proc.vars;
    let layout = Layout::new(&proc.vars);
    let regions: Vec<(usize, &LabeledRegion)> = labeled
        .schedule
        .regions
        .iter()
        .zip(&labeled.regions)
        .map(|(d, lr)| (d.stmt_index, lr))
        .collect();
    let mut memory = initial_memory_with_layout(&layout);
    let mut tally = CacheTally::default();
    let mut serial_cycles = 0u64;
    let mut region_cycles = Vec::with_capacity(regions.len());
    let mut region_counts = Vec::with_capacity(regions.len());
    let mut cursor = 0usize;
    for (i, (stmt_index, labeled_region)) in regions.iter().enumerate() {
        serial_cycles += run_serial_span(
            vars,
            &layout,
            &proc.body[cursor..*stmt_index],
            &mut memory,
            cfg,
            serial_span_key(proc, &regions, i, cursor),
            &mut tally,
        )?;
        cursor = stmt_index + 1;
        let label = &labeled_region.analysis.spec.loop_label;
        schedule_loop(proc, *stmt_index, label)?;
        let region_stmt = std::slice::from_ref(&proc.body[*stmt_index]);
        let mut store = CountingStore::new(PlainStore::new(&mut memory));
        let steps = match cfg.backend {
            ExecBackend::Lowered | ExecBackend::Fused => {
                let hot = matches!(&region_stmt[0], Stmt::Loop(l) if region_is_hot(cfg, vars, l));
                let unit = if hot {
                    LowerUnit::FusedRegionLoop
                } else {
                    LowerUnit::RegionLoop
                };
                let outcome = cfg
                    .cache
                    .lookup(LowerKey::new(proc, label.as_str(), unit), || {
                        let base = lower(vars, &layout, region_stmt);
                        if hot {
                            fuse(&base)
                        } else {
                            base
                        }
                    });
                tally.count(&outcome);
                let mut exec = LoweredSegmentExec::new(&outcome.proc, &[]);
                exec.run(&mut store, cfg.max_statements as usize)
                    .map_err(SimError::Exec)?;
                exec.steps()
            }
            ExecBackend::TreeWalk => {
                let mut exec = SegmentExec::new(vars, &layout, region_stmt, &[]);
                exec.run(&mut store, cfg.max_statements as usize)
                    .map_err(SimError::Exec)?;
                exec.steps()
            }
        };
        let accesses: u64 = store.counts.values().map(|(r, w)| r + w).sum();
        region_cycles.push(accesses * cfg.lat_nonspec + steps as u64 * cfg.stmt_cost);
        region_counts.push(store.counts);
    }
    serial_cycles += run_serial_span(
        vars,
        &layout,
        &proc.body[cursor..],
        &mut memory,
        cfg,
        serial_span_key(proc, &regions, regions.len(), cursor),
        &mut tally,
    )?;
    let total_cycles = serial_cycles + region_cycles.iter().sum::<u64>();
    Ok(SeqProgramOutcome {
        memory,
        serial_cycles,
        region_cycles,
        region_counts,
        total_cycles,
    })
}

/// Side-by-side whole-program comparison: the sequential baseline, HOSE
/// and CASE for one labeled program (the coverage ablation's unit).
#[derive(Clone, Debug)]
pub struct ProgramComparison {
    /// Whole-program cycles of the one-processor sequential baseline.
    pub sequential_cycles: u64,
    /// The sequential baseline's coverage fraction (share of cycles
    /// inside speculative regions — the Amdahl ceiling's input).
    pub sequential_coverage: f64,
    /// HOSE whole-program report.
    pub hose: ProgramReport,
    /// CASE whole-program report.
    pub case: ProgramReport,
}

impl ProgramComparison {
    /// Whole-program speedup of HOSE over the sequential baseline.
    pub fn hose_speedup(&self) -> f64 {
        crate::report::speedup(self.sequential_cycles, self.hose.total_cycles)
    }

    /// Whole-program speedup of CASE over the sequential baseline.
    pub fn case_speedup(&self) -> f64 {
        crate::report::speedup(self.sequential_cycles, self.case.total_cycles)
    }

    /// Amdahl's ceiling for this program: the speedup an infinitely fast
    /// parallel section would reach given the sequential coverage
    /// fraction `c` and `processors` workers, `1 / ((1-c) + c/P)`.
    pub fn amdahl_bound(&self, processors: usize) -> f64 {
        let c = self.sequential_coverage;
        1.0 / ((1.0 - c) + c / processors.max(1) as f64)
    }
}

/// Runs the whole-program sequential baseline, HOSE and CASE for one
/// labeled program and packages the speedups and coverage.
pub fn compare_program_modes(
    program: &Program,
    labeled: &LabeledProgram,
    cfg: &SimConfig,
) -> Result<ProgramComparison, SimError> {
    let seq = run_program_sequential(program, labeled, cfg)?;
    let hose = simulate_program(program, labeled, ExecMode::Hose, cfg)?;
    let case = simulate_program(program, labeled, ExecMode::Case, cfg)?;
    Ok(ProgramComparison {
        sequential_cycles: seq.total_cycles,
        sequential_coverage: seq.coverage_fraction(),
        hose: hose.report,
        case: case.report,
    })
}

/// Runs the sequential baseline, HOSE and CASE for one region and packages
/// the speedups (the (b)-panels of Figures 6–9).
pub fn compare_modes(
    program: &Program,
    labeled: &LabeledRegion,
    cfg: &SimConfig,
) -> Result<SpeedupComparison, SimError> {
    let seq = run_sequential(program, labeled, cfg)?;
    let hose = simulate_region(program, labeled, ExecMode::Hose, cfg)?;
    let case = simulate_region(program, labeled, ExecMode::Case, cfg)?;
    Ok(SpeedupComparison {
        region: labeled.analysis.spec.loop_label.clone(),
        sequential_cycles: seq.region_cycles,
        hose: hose.report,
        case: case.report,
    })
}

/// Checks the simulator's functional correctness (Lemmas 1 and 2 as a test):
/// the final memory of a speculative run must equal the final memory of the
/// sequential run on every address except those belonging to variables the
/// region classifies as private (private locations are dead at region exit
/// and live in per-segment storage under CASE).
///
/// Returns the list of differing addresses (empty on success).
pub fn verify_against_sequential(
    program: &Program,
    labeled: &LabeledRegion,
    mode: ExecMode,
    cfg: &SimConfig,
) -> Result<Vec<(Addr, f64, f64)>, SimError> {
    let (proc, _vars, layout) = resolve(program, labeled)?;
    let seq = run_sequential(program, labeled, cfg)?;
    let sim = simulate_region(program, labeled, mode, cfg)?;
    // Addresses of private variables are excluded from the comparison.
    let mut ignored: Vec<(u64, u64)> = Vec::new();
    for (v, class) in labeled.analysis.classes.iter() {
        if class == VarClass::Private {
            let base = layout.base(v).0;
            let size = proc.vars.kind(v).size() as u64;
            ignored.push((base, base + size));
        }
    }
    let diffs = seq
        .memory
        .diff(&sim.memory, usize::MAX)
        .into_iter()
        .filter(|(addr, _, _)| !ignored.iter().any(|(lo, hi)| addr.0 >= *lo && addr.0 < *hi))
        .collect();
    Ok(diffs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use refidem_core::label::label_program_region_by_name;
    use refidem_ir::build::{ac, add, av, mul, num, ProcBuilder};
    use refidem_ir::lowered::LoweredCache;
    use refidem_ir::program::Program;

    /// do k = 2, 33:  a(k) = a(k-1) + b(k)   — a cross-segment flow
    /// dependence chain plus a read-only array.
    fn recurrence_program() -> Program {
        let mut b = ProcBuilder::new("main");
        let a = b.array("a", &[40]);
        let bb = b.array("b", &[40]);
        let k = b.index("k");
        b.live_out(&[a]);
        let rhs = add(
            b.load_elem(a, vec![av(k) - ac(1)]),
            b.load_elem(bb, vec![av(k)]),
        );
        let s = b.assign_elem(a, vec![av(k)], rhs);
        let region = b.do_loop_labeled("REC", k, ac(2), ac(33), vec![s]);
        let mut p = Program::new("recurrence");
        p.add_procedure(b.build(vec![region]));
        p
    }

    /// A wide, independent-per-iteration loop with many distinct addresses
    /// per iteration: overflows small speculative storage under HOSE, but
    /// most references are read-only/idempotent under CASE.
    fn wide_program() -> Program {
        let mut b = ProcBuilder::new("main");
        let src = b.array("src", &[20 * 40]);
        let dst = b.array("dst", &[40]);
        let acc = b.scalar("acc");
        let k = b.index("k");
        let j = b.index("j");
        b.live_out(&[dst]);
        // acc = 0; do j = 1, 20 { acc = acc + src(20*(k-1)+j) } ; dst(k) = acc
        let init = b.assign_scalar(acc, num(0.0));
        let src_sub = AffineBuilder::wide_subscript(k, j);
        let rhs = add(b.load(acc), b.load_elem(src, vec![src_sub]));
        let body_stmt = b.assign_scalar(acc, rhs);
        let inner = b.do_loop(j, ac(1), ac(20), vec![body_stmt]);
        let rhs2 = b.load(acc);
        let fin = b.assign_elem(dst, vec![av(k)], rhs2);
        let region = b.do_loop_labeled("WIDE", k, ac(1), ac(40), vec![init, inner, fin]);
        let mut p = Program::new("wide");
        p.add_procedure(b.build(vec![region]));
        p
    }

    /// Helper building `20*(k-1) + j` without pulling the builder into
    /// the affine module.
    struct AffineBuilder;
    impl AffineBuilder {
        fn wide_subscript(
            k: refidem_ir::ids::VarId,
            j: refidem_ir::ids::VarId,
        ) -> refidem_ir::affine::AffineExpr {
            refidem_ir::affine::AffineExpr::scaled_var(k, 20) + av(j) - ac(20)
        }
    }

    #[test]
    fn hose_matches_sequential_execution_on_a_recurrence() {
        let p = recurrence_program();
        let labeled = label_program_region_by_name(&p, "REC").unwrap();
        let cfg = SimConfig::default();
        let diffs = verify_against_sequential(&p, &labeled, ExecMode::Hose, &cfg).unwrap();
        assert!(diffs.is_empty(), "HOSE must match sequential: {diffs:?}");
    }

    #[test]
    fn case_matches_sequential_execution_on_a_recurrence() {
        let p = recurrence_program();
        let labeled = label_program_region_by_name(&p, "REC").unwrap();
        let cfg = SimConfig::default();
        let diffs = verify_against_sequential(&p, &labeled, ExecMode::Case, &cfg).unwrap();
        assert!(diffs.is_empty(), "CASE must match sequential: {diffs:?}");
    }

    #[test]
    fn violations_and_rollbacks_occur_on_the_recurrence_under_hose() {
        let p = recurrence_program();
        let labeled = label_program_region_by_name(&p, "REC").unwrap();
        let cfg = SimConfig::default();
        let out = simulate_region(&p, &labeled, ExecMode::Hose, &cfg).unwrap();
        assert!(
            out.report.violations > 0,
            "the flow dependence chain must trigger violations"
        );
        assert!(out.report.rollbacks > 0);
        assert_eq!(out.report.commits as usize, out.report.segments);
    }

    #[test]
    fn small_speculative_storage_overflows_under_hose_but_not_case() {
        let p = wide_program();
        let labeled = label_program_region_by_name(&p, "WIDE").unwrap();
        // Each iteration touches ~22 distinct addresses; capacity 8 forces
        // overflow under HOSE.
        let cfg = SimConfig::default().capacity(8);
        let hose = simulate_region(&p, &labeled, ExecMode::Hose, &cfg).unwrap();
        let case = simulate_region(&p, &labeled, ExecMode::Case, &cfg).unwrap();
        assert!(hose.report.overflow_stalls > 0, "HOSE must overflow");
        assert!(
            case.report.overflow_stalls == 0,
            "CASE labels the src reads idempotent and avoids overflow"
        );
        assert!(
            case.report.region_cycles < hose.report.region_cycles,
            "CASE must be faster when HOSE overflows (case {} vs hose {})",
            case.report.region_cycles,
            hose.report.region_cycles
        );
        // Both are functionally correct.
        for mode in [ExecMode::Hose, ExecMode::Case] {
            let diffs = verify_against_sequential(&p, &labeled, mode, &cfg).unwrap();
            assert!(diffs.is_empty(), "{mode} must match sequential: {diffs:?}");
        }
    }

    #[test]
    fn compare_modes_reports_speedups() {
        let p = wide_program();
        let labeled = label_program_region_by_name(&p, "WIDE").unwrap();
        let cfg = SimConfig::default().capacity(8);
        let cmp = compare_modes(&p, &labeled, &cfg).unwrap();
        assert!(cmp.sequential_cycles > 0);
        assert!(cmp.case_speedup() > cmp.hose_speedup());
        assert!(cmp.case_speedup() > 1.0, "CASE should beat one processor");
    }

    #[test]
    fn fully_speculative_loop_without_dependences_still_commits_in_order() {
        // do k = 1, 16: c(k) = c(k) * 2 — independent; HOSE should get a
        // speedup > 1 with adequate storage and no violations.
        let mut b = ProcBuilder::new("main");
        let c = b.array("c", &[16]);
        let k = b.index("k");
        b.live_out(&[c]);
        let rhs = mul(b.load_elem(c, vec![av(k)]), num(2.0));
        let s = b.assign_elem(c, vec![av(k)], rhs);
        let region = b.do_loop_labeled("IND", k, ac(1), ac(16), vec![s]);
        let mut p = Program::new("ind");
        p.add_procedure(b.build(vec![region]));
        let labeled = label_program_region_by_name(&p, "IND").unwrap();
        assert!(labeled.labeling.fully_independent);
        let cfg = SimConfig::default();
        let cmp = compare_modes(&p, &labeled, &cfg).unwrap();
        assert_eq!(cmp.hose.violations, 0);
        assert_eq!(cmp.case.violations, 0);
        assert!(cmp.hose_speedup() > 1.0);
        assert!(cmp.case_speedup() > 1.0);
        for mode in [ExecMode::Hose, ExecMode::Case] {
            let diffs = verify_against_sequential(&p, &labeled, mode, &cfg).unwrap();
            assert!(diffs.is_empty());
        }
    }

    #[test]
    fn private_variables_use_private_storage_under_case() {
        // do k: { t = b(k); a(k) = t * 2 } — t is private.
        let mut b = ProcBuilder::new("main");
        let a = b.array("a", &[24]);
        let bb = b.array("b", &[24]);
        let t = b.scalar("t");
        let k = b.index("k");
        b.live_out(&[a]);
        let rhs1 = b.load_elem(bb, vec![av(k)]);
        let s1 = b.assign_scalar(t, rhs1);
        let rhs2 = mul(b.load(t), num(2.0));
        let s2 = b.assign_elem(a, vec![av(k)], rhs2);
        let region = b.do_loop_labeled("PRIV", k, ac(1), ac(24), vec![s1, s2]);
        let mut p = Program::new("priv");
        p.add_procedure(b.build(vec![region]));
        let labeled = label_program_region_by_name(&p, "PRIV").unwrap();
        let cfg = SimConfig::default();
        let case = simulate_region(&p, &labeled, ExecMode::Case, &cfg).unwrap();
        assert!(case.report.private_reads > 0);
        assert!(case.report.private_writes > 0);
        let diffs = verify_against_sequential(&p, &labeled, ExecMode::Case, &cfg).unwrap();
        assert!(
            diffs.is_empty(),
            "private values are excluded from comparison: {diffs:?}"
        );
        // Under HOSE everything goes to speculative storage.
        let hose = simulate_region(&p, &labeled, ExecMode::Hose, &cfg).unwrap();
        assert_eq!(hose.report.private_reads, 0);
        assert_eq!(hose.report.nonspec_writes, 0);
    }

    #[test]
    fn single_processor_configuration_degenerates_gracefully() {
        let p = recurrence_program();
        let labeled = label_program_region_by_name(&p, "REC").unwrap();
        let cfg = SimConfig::default().processors(1);
        let out = simulate_region(&p, &labeled, ExecMode::Hose, &cfg).unwrap();
        assert_eq!(out.report.violations, 0, "one processor cannot violate");
        let diffs = verify_against_sequential(&p, &labeled, ExecMode::Hose, &cfg).unwrap();
        assert!(diffs.is_empty());
    }

    #[test]
    fn capacity_sweeps_compile_the_region_exactly_once() {
        use refidem_ir::lowered::LoweredCache;
        let p = wide_program();
        let labeled = label_program_region_by_name(&p, "WIDE").unwrap();
        let cache = LoweredCache::fresh();
        let base = SimConfig::default().cache(cache.clone());

        // First simulation compiles (the program has no prologue/epilogue,
        // so the region body is the only query); every further point of
        // the ladder — any capacity, either mode — hits.
        let first = simulate_region(&p, &labeled, ExecMode::Hose, &base).unwrap();
        assert_eq!(first.report.lowering_cache_misses, 1);
        assert_eq!(first.report.lowering_cache_hits, 0);
        for capacity in [1, 2, 4, 16, 256] {
            for mode in [ExecMode::Hose, ExecMode::Case] {
                let cfg = base.clone().capacity(capacity);
                let out = simulate_region(&p, &labeled, mode, &cfg).unwrap();
                assert_eq!(
                    out.report.lowering_cache_misses, 0,
                    "{mode} @ {capacity} recompiled"
                );
                assert_eq!(out.report.lowering_cache_hits, 1);
            }
        }
        // One region body entry; the sequential baseline adds its own
        // whole-loop unit, and a *different* region gets its own entries.
        assert_eq!(cache.len(), 1);
        run_sequential(&p, &labeled, &base).unwrap();
        assert_eq!(cache.len(), 2);
        let other = recurrence_program();
        let other_labeled = label_program_region_by_name(&other, "REC").unwrap();
        let out = simulate_region(&other, &other_labeled, ExecMode::Case, &base).unwrap();
        assert_eq!(out.report.lowering_cache_misses, 1);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn capacity_ladder_analyzes_each_region_exactly_once() {
        use refidem_core::cache::AnalysisCache;
        let p = wide_program();
        let base = SimConfig::default()
            .cache(LoweredCache::fresh())
            .analysis_cache(AnalysisCache::fresh());

        // The first cached simulation analyzes; every further point of the
        // ladder — any capacity, either mode — reuses that analysis.
        let first = simulate_region_cached(&p, "WIDE", ExecMode::Hose, &base).unwrap();
        assert_eq!(first.report.analysis_cache_misses, 1);
        assert_eq!(first.report.analysis_cache_hits, 0);
        for capacity in [1, 2, 4, 16, 256] {
            for mode in [ExecMode::Hose, ExecMode::Case] {
                let cfg = base.clone().capacity(capacity);
                let out = simulate_region_cached(&p, "WIDE", mode, &cfg).unwrap();
                assert_eq!(
                    out.report.analysis_cache_misses, 0,
                    "{mode} @ {capacity} re-analyzed"
                );
                assert_eq!(out.report.analysis_cache_hits, 1);
                assert_eq!(out.report.analysis_cache_evictions, 0);
            }
        }
        assert_eq!(base.analysis_cache.len(), 1, "one entry per region");
        assert_eq!(base.analysis_cache.evictions(), 0);

        // The cached run is bit-identical to the classic label-then-simulate
        // path: same report (minus the analysis counters, which only the
        // cached entry points populate) and byte-identical memory.
        let labeled = label_program_region_by_name(&p, "WIDE").unwrap();
        let classic = simulate_region(&p, &labeled, ExecMode::Case, &base).unwrap();
        let cached = simulate_region_cached(&p, "WIDE", ExecMode::Case, &base).unwrap();
        let mut strip = cached.report.clone();
        strip.analysis_cache_hits = 0;
        strip.analysis_cache_misses = 0;
        strip.analysis_cache_evictions = 0;
        assert_eq!(strip, classic.report);
        assert!(classic.memory.diff(&cached.memory, usize::MAX).is_empty());
    }

    #[test]
    fn cached_program_simulation_matches_the_classic_path() {
        use refidem_core::cache::AnalysisCache;
        use refidem_core::label::label_program;
        use refidem_ir::ids::ProcId;
        let p = recurrence_program();
        let cfg = SimConfig::default()
            .cache(LoweredCache::fresh())
            .analysis_cache(AnalysisCache::fresh());
        let labeled = label_program(&p, ProcId::from_index(0)).unwrap();
        let classic = simulate_program(&p, &labeled, ExecMode::Hose, &cfg).unwrap();
        let cached =
            simulate_program_cached(&p, ProcId::from_index(0), ExecMode::Hose, &cfg).unwrap();
        assert_eq!(cached.report.analysis_cache_misses, 1);
        let again =
            simulate_program_cached(&p, ProcId::from_index(0), ExecMode::Hose, &cfg).unwrap();
        assert_eq!(again.report.analysis_cache_hits, 1);
        assert_eq!(again.report.analysis_cache_misses, 0);
        let mut strip = again.report.clone();
        strip.analysis_cache_hits = 0;
        strip.analysis_cache_misses = 0;
        strip.analysis_cache_evictions = 0;
        // The classic first run performed the lowering misses; the cached
        // re-runs hit. Compare everything else.
        strip.lowering_cache_hits = classic.report.lowering_cache_hits;
        strip.lowering_cache_misses = classic.report.lowering_cache_misses;
        strip.lowering_cache_evictions = classic.report.lowering_cache_evictions;
        for (r, c) in strip.regions.iter_mut().zip(&classic.report.regions) {
            r.lowering_cache_hits = c.lowering_cache_hits;
            r.lowering_cache_misses = c.lowering_cache_misses;
            r.lowering_cache_evictions = c.lowering_cache_evictions;
        }
        assert_eq!(strip, classic.report);
        assert!(classic.memory.diff(&cached.memory, usize::MAX).is_empty());
    }

    #[test]
    fn oracle_backend_never_touches_the_compilation_cache() {
        use refidem_ir::lowered::LoweredCache;
        let p = recurrence_program();
        let labeled = label_program_region_by_name(&p, "REC").unwrap();
        let cache = LoweredCache::fresh();
        let cfg = SimConfig::default().cache(cache.clone()).oracle();
        let out = simulate_region(&p, &labeled, ExecMode::Hose, &cfg).unwrap();
        assert_eq!(out.report.lowering_cache_hits, 0);
        assert_eq!(out.report.lowering_cache_misses, 0);
        assert!(cache.is_empty());
    }

    /// serial prologue ; R1: a(k) = a(k-1) + b(k) ; serial gap ;
    /// R2: c(k) = a(k) * 2 (reads R1's live output) ; serial epilogue.
    fn two_region_program() -> Program {
        let mut b = ProcBuilder::new("main");
        let a = b.array("a", &[40]);
        let bb = b.array("b", &[40]);
        let c = b.array("c", &[40]);
        let s = b.scalar("s");
        let k = b.index("k");
        b.live_out(&[a, c, s]);
        let pre = b.assign_scalar(s, num(1.5));
        let rhs1 = add(
            b.load_elem(a, vec![av(k) - ac(1)]),
            b.load_elem(bb, vec![av(k)]),
        );
        let st1 = b.assign_elem(a, vec![av(k)], rhs1);
        let r1 = b.do_loop_labeled("R1", k, ac(2), ac(33), vec![st1]);
        let gap_rhs = add(b.load(s), num(0.25));
        let gap = b.assign_scalar(s, gap_rhs);
        let rhs2 = mul(b.load_elem(a, vec![av(k)]), num(2.0));
        let st2 = b.assign_elem(c, vec![av(k)], rhs2);
        let r2 = b.do_loop_labeled("R2", k, ac(1), ac(40), vec![st2]);
        let post_rhs = mul(b.load(s), num(0.5));
        let post = b.assign_scalar(s, post_rhs);
        let mut p = Program::new("two-region");
        p.add_procedure(b.build(vec![pre, r1, gap, r2, post]));
        p
    }

    fn labeled_program(p: &Program) -> refidem_core::label::LabeledProgram {
        refidem_core::label::label_program(p, refidem_ir::ids::ProcId::from_index(0)).unwrap()
    }

    #[test]
    fn whole_program_simulation_reports_per_region_and_serial_breakdown() {
        let p = two_region_program();
        let labeled = labeled_program(&p);
        assert_eq!(labeled.len(), 2);
        let cfg = SimConfig::default();
        let seq = run_program_sequential(&p, &labeled, &cfg).unwrap();
        assert_eq!(seq.region_cycles.len(), 2);
        assert_eq!(
            seq.total_cycles,
            seq.serial_cycles + seq.region_cycles.iter().sum::<u64>()
        );
        assert!(seq.coverage_fraction() > 0.9, "tiny serial spans");
        assert!(seq.coverage_fraction() < 1.0);
        for mode in [ExecMode::Hose, ExecMode::Case] {
            let out = simulate_program(&p, &labeled, mode, &cfg).unwrap();
            let r = &out.report;
            assert_eq!(r.regions.len(), 2);
            // Per-region reports sum to the whole-program cycle count.
            assert_eq!(r.total_cycles, r.serial_cycles + r.parallel_cycles());
            assert!(r.coverage_fraction() > 0.0 && r.coverage_fraction() < 1.0);
            assert_eq!(r.regions[0].segments, 32);
            assert_eq!(r.regions[1].segments, 40);
            // The recurrence region violates under HOSE; the independent
            // one never does.
            if mode == ExecMode::Hose {
                assert!(r.regions[0].violations > 0);
            }
            assert_eq!(r.regions[1].violations, 0);
            // Back-to-back regions share live state (R2 reads R1's a):
            // whole-program memory must equal the sequential image.
            let diffs = seq.memory.diff(&out.memory, 8);
            assert!(diffs.is_empty(), "{mode}: {diffs:?}");
        }
    }

    #[test]
    fn restarts_are_surfaced_and_bounded() {
        let p = two_region_program();
        let labeled = labeled_program(&p);
        let cfg = SimConfig::default();
        let out = simulate_program(&p, &labeled, ExecMode::Hose, &cfg).unwrap();
        let rec = &out.report.regions[0];
        assert!(rec.max_segment_restarts > 0, "the recurrence rolls back");
        assert!(
            (rec.max_segment_restarts as u64) <= rec.rollbacks + rec.overflow_stalls,
            "every restart is paid for by a roll-back or an overflow stall"
        );
        assert_eq!(out.report.max_segment_restarts(), rec.max_segment_restarts);
        // A clean region restarts nobody.
        let ind = &out.report.regions[1];
        assert_eq!(ind.max_segment_restarts, 0);
    }

    /// Zeroes a report's compilation-pipeline counters (the only fields
    /// that depend on what earlier runs left in a shared cache).
    fn no_cache_counters(report: &SimReport) -> SimReport {
        SimReport {
            lowering_cache_hits: 0,
            lowering_cache_misses: 0,
            lowering_cache_evictions: 0,
            ..report.clone()
        }
    }

    #[test]
    fn thin_region_schedule_matches_the_program_pipeline() {
        // simulate_region is a one-region schedule: on a single-region
        // program its report equals simulate_program's region report. The
        // cache counters are compared on their own terms (their hit/miss
        // split depends on what earlier runs left in the shared cache).
        let p = recurrence_program();
        let region = label_program_region_by_name(&p, "REC").unwrap();
        let labeled = labeled_program(&p);
        let cfg = SimConfig::default();
        for mode in [ExecMode::Hose, ExecMode::Case] {
            let one = simulate_region(&p, &region, mode, &cfg).unwrap();
            let all = simulate_program(&p, &labeled, mode, &cfg).unwrap();
            assert_eq!(all.report.regions.len(), 1);
            assert_eq!(
                no_cache_counters(&one.report),
                no_cache_counters(&all.report.regions[0]),
                "{mode}"
            );
            // Both runs query the cache for the (empty-span-free) region
            // body exactly once.
            assert_eq!(
                one.report.lowering_cache_hits + one.report.lowering_cache_misses,
                1
            );
            assert_eq!(
                all.report.lowering_cache_hits + all.report.lowering_cache_misses,
                1
            );
            assert!(one.memory.diff(&all.memory, 8).is_empty());
        }
    }

    #[test]
    fn shared_cache_keeps_program_and_region_serial_spans_apart() {
        // The one-region path's prologue reaches back to the procedure
        // start (through earlier region loops), while the program path's
        // serial span before the same region is only the inter-region
        // gap: with one shared cache the two must compile under distinct
        // keys — a collision would silently serve whichever caller came
        // second the other's bytecode and skip (or re-run) whole regions.
        use refidem_ir::lowered::LoweredCache;
        let p = two_region_program();
        let labeled = labeled_program(&p);
        let r2 = label_program_region_by_name(&p, "R2").unwrap();
        let seq_all = run_program_sequential(&p, &labeled, &SimConfig::default().oracle()).unwrap();
        let seq_one = run_sequential(&p, &r2, &SimConfig::default().oracle()).unwrap();
        for program_first in [true, false] {
            let cfg = SimConfig::default().cache(LoweredCache::fresh());
            if program_first {
                let all = simulate_program(&p, &labeled, ExecMode::Case, &cfg).unwrap();
                assert!(seq_all.memory.diff(&all.memory, 8).is_empty());
                let one = simulate_region(&p, &r2, ExecMode::Case, &cfg).unwrap();
                let diffs = seq_one.memory.diff(&one.memory, 8);
                assert!(diffs.is_empty(), "region-after-program diverged: {diffs:?}");
            } else {
                let one = simulate_region(&p, &r2, ExecMode::Case, &cfg).unwrap();
                assert!(seq_one.memory.diff(&one.memory, 8).is_empty());
                let all = simulate_program(&p, &labeled, ExecMode::Case, &cfg).unwrap();
                let diffs = seq_all.memory.diff(&all.memory, 8);
                assert!(diffs.is_empty(), "program-after-region diverged: {diffs:?}");
            }
        }
    }

    #[test]
    fn serial_only_programs_have_zero_coverage() {
        let mut b = ProcBuilder::new("main");
        let s = b.scalar("s");
        let t = b.scalar("t");
        b.live_out(&[s, t]);
        let st1 = b.assign_scalar(s, num(2.0));
        let st2_rhs = mul(b.load(s), num(3.0));
        let st2 = b.assign_scalar(t, st2_rhs);
        let mut p = Program::new("serial-only");
        p.add_procedure(b.build(vec![st1, st2]));
        let labeled = labeled_program(&p);
        assert!(labeled.is_empty());
        let cfg = SimConfig::default();
        let seq = run_program_sequential(&p, &labeled, &cfg).unwrap();
        assert_eq!(seq.coverage_fraction(), 0.0);
        assert!(seq.serial_cycles > 0);
        let out = simulate_program(&p, &labeled, ExecMode::Case, &cfg).unwrap();
        assert!(out.report.regions.is_empty());
        assert_eq!(out.report.coverage_fraction(), 0.0);
        assert_eq!(out.report.total_cycles, out.report.serial_cycles);
        assert!(seq.memory.diff(&out.memory, 8).is_empty());
        // Both paths agree on the serial timing too.
        assert_eq!(out.report.serial_cycles, seq.serial_cycles);
    }

    #[test]
    fn zero_trip_and_single_iteration_regions_schedule_cleanly() {
        let mut b = ProcBuilder::new("main");
        let a = b.array("a", &[8]);
        let k = b.index("k");
        b.live_out(&[a]);
        // do k = 5, 2 — zero trips.
        let st0 = b.assign_elem(a, vec![av(k)], num(9.0));
        let zero = b.do_loop_labeled("ZERO", k, ac(5), ac(2), vec![st0]);
        // do k = 3, 3 — exactly one segment.
        let st1 = b.assign_elem(a, vec![av(k)], num(4.0));
        let one = b.do_loop_labeled("ONE", k, ac(3), ac(3), vec![st1]);
        let mut p = Program::new("degenerate");
        p.add_procedure(b.build(vec![zero, one]));
        let labeled = labeled_program(&p);
        let cfg = SimConfig::default();
        let seq = run_program_sequential(&p, &labeled, &cfg).unwrap();
        // The zero-trip loop's sequential cost is just its header check.
        assert!(
            seq.region_cycles[0] <= cfg.stmt_cost * 2,
            "{}",
            seq.region_cycles[0]
        );
        for mode in [ExecMode::Hose, ExecMode::Case] {
            let out = simulate_program(&p, &labeled, mode, &cfg).unwrap();
            assert_eq!(out.report.regions[0].segments, 0);
            assert_eq!(out.report.regions[0].commits, 0);
            assert_eq!(out.report.regions[0].region_cycles, 0);
            assert_eq!(out.report.regions[1].segments, 1);
            assert_eq!(out.report.regions[1].commits, 1);
            assert_eq!(out.report.regions[1].violations, 0);
            assert!(seq.memory.diff(&out.memory, 8).is_empty());
        }
    }

    #[test]
    fn scratch_pooling_is_observationally_invisible() {
        // The pooled and the per-call scratch paths must be bit-identical:
        // run a capacity ladder (which re-targets pooled buffer capacities
        // in place) on both and compare everything.
        let p = two_region_program();
        let labeled = labeled_program(&p);
        for mode in [ExecMode::Hose, ExecMode::Case] {
            for capacity in [1usize, 4, 64, 4, 1] {
                let pooled = SimConfig::default().capacity(capacity);
                let fresh = pooled.clone().pool_scratch(false);
                let a = simulate_program(&p, &labeled, mode, &pooled).unwrap();
                let b = simulate_program(&p, &labeled, mode, &fresh).unwrap();
                let strip = |r: &crate::report::ProgramReport| {
                    let mut r = r.clone();
                    r.lowering_cache_hits = 0;
                    r.lowering_cache_misses = 0;
                    r.lowering_cache_evictions = 0;
                    for region in &mut r.regions {
                        region.lowering_cache_hits = 0;
                        region.lowering_cache_misses = 0;
                        region.lowering_cache_evictions = 0;
                    }
                    r
                };
                assert_eq!(strip(&a.report), strip(&b.report), "{mode} @ {capacity}");
                assert!(a.memory.diff(&b.memory, 8).is_empty());
            }
        }
    }

    #[test]
    fn scratch_pool_survives_worker_thread_churn() {
        // The original thread_local pool died with every SweepExec worker;
        // the config's shared pool must not: a run on one short-lived
        // thread parks its scratch where a *different* later thread's run
        // finds it.
        use crate::engine::ScratchPool;
        let p = two_region_program();
        let labeled = labeled_program(&p);
        let pool = ScratchPool::fresh();
        let cfg = SimConfig::default().scratch(pool.clone());
        std::thread::scope(|s| {
            s.spawn(|| simulate_program(&p, &labeled, ExecMode::Case, &cfg).unwrap())
                .join()
                .unwrap();
        });
        assert_eq!(pool.len(), 1, "worker's scratch outlives its thread");
        std::thread::scope(|s| {
            s.spawn(|| simulate_program(&p, &labeled, ExecMode::Hose, &cfg).unwrap())
                .join()
                .unwrap();
        });
        assert_eq!(pool.len(), 1, "second worker reused the parked scratch");
        // An errored run drops its scratch instead of parking marks.
        let empty = ScratchPool::fresh();
        assert!(empty.is_empty());
        assert_eq!(SimConfig::default().scratch, SimConfig::default().scratch);
    }

    #[test]
    fn sweeps_under_the_default_cache_bound_never_evict() {
        // Satellite guarantee: the default LRU bound is generous enough
        // that an ordinary capacity-ladder sweep reports zero evictions.
        let p = two_region_program();
        let labeled = labeled_program(&p);
        let cfg = SimConfig::default().cache(LoweredCache::fresh());
        for mode in [ExecMode::Hose, ExecMode::Case] {
            for capacity in [1usize, 2, 4, 16, 256] {
                let out =
                    simulate_program(&p, &labeled, mode, &cfg.clone().capacity(capacity)).unwrap();
                assert_eq!(out.report.lowering_cache_evictions, 0);
                assert!(out
                    .report
                    .regions
                    .iter()
                    .all(|r| r.lowering_cache_evictions == 0));
            }
        }
        assert_eq!(cfg.cache.evictions(), 0);
        // A deliberately tiny bound *does* evict — and the report's
        // counter attributes those evictions to the run that paid them.
        let tiny = SimConfig::default().cache(LoweredCache::with_capacity(1));
        let out = simulate_program(&p, &labeled, ExecMode::Case, &tiny).unwrap();
        assert!(out.report.lowering_cache_evictions > 0);
        assert_eq!(tiny.cache.evictions(), out.report.lowering_cache_evictions);
    }

    #[test]
    fn region_bounds_must_be_constant() {
        // do k = 1, n where n is a scalar variable (not a parameter).
        let mut b = ProcBuilder::new("main");
        let a = b.array("a", &[8]);
        let n = b.scalar("n");
        let k = b.index("k");
        let s = b.assign_elem(a, vec![av(k)], num(1.0));
        let region = b.do_loop_labeled("VARB", k, ac(1), av(n), vec![s]);
        let mut p = Program::new("varb");
        p.add_procedure(b.build(vec![region]));
        let labeled = label_program_region_by_name(&p, "VARB").unwrap();
        let err = simulate_region(&p, &labeled, ExecMode::Hose, &SimConfig::default()).unwrap_err();
        assert_eq!(err, SimError::RegionBoundsNotConstant);
    }
}
