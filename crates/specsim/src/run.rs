//! High-level simulation API.
//!
//! A simulation executes one procedure: the statements before the
//! designated region run sequentially, the region runs speculatively under
//! HOSE or CASE, and the statements after it run sequentially again. The
//! sequential baseline ([`run_sequential`]) times the same region on one
//! processor with every access going to non-speculative storage, which is
//! the denominator of the loop speedups the paper reports.

use crate::config::SimConfig;
use crate::engine::Engine;
use crate::report::{SimReport, SpeedupComparison};
use refidem_analysis::classify::VarClass;
use refidem_core::label::LabeledRegion;
use refidem_ir::exec::{CountingStore, DynCounts, ExecError, PlainStore, SegmentExec};
use refidem_ir::lowered::{
    lower, lower_with_ranges, ExecBackend, LowerKey, LowerUnit, LoweredSegmentExec,
};
use refidem_ir::memory::{Addr, Layout, Memory};
use refidem_ir::program::{Procedure, Program};
use refidem_ir::var::VarTable;

/// The execution model to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Hardware-only speculative execution (Definition 2): every reference
    /// is tracked in speculative storage.
    Hose,
    /// Compiler-assisted speculative execution (Definition 4): idempotent
    /// references bypass speculative storage.
    Case,
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecMode::Hose => write!(f, "HOSE"),
            ExecMode::Case => write!(f, "CASE"),
        }
    }
}

/// Errors produced by the simulator.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The labeled region's procedure or loop could not be resolved.
    Region(String),
    /// The region loop's bounds are not compile-time constants (the
    /// simulator needs to enumerate the segments).
    RegionBoundsNotConstant,
    /// The underlying interpreter failed.
    Exec(ExecError),
    /// No segment could make progress (internal invariant violation).
    Deadlock,
    /// The configured statement budget was exhausted.
    StatementBudgetExceeded,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Region(s) => write!(f, "region error: {s}"),
            SimError::RegionBoundsNotConstant => {
                write!(f, "region loop bounds are not compile-time constants")
            }
            SimError::Exec(e) => write!(f, "execution error: {e}"),
            SimError::Deadlock => write!(f, "no segment can make progress"),
            SimError::StatementBudgetExceeded => write!(f, "statement budget exceeded"),
        }
    }
}

impl std::error::Error for SimError {}

/// The result of one simulated execution.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// Region execution statistics.
    pub report: SimReport,
    /// Final non-speculative memory (after the whole procedure ran).
    pub memory: Memory,
}

/// The result of the sequential baseline execution.
#[derive(Clone, Debug)]
pub struct SeqOutcome {
    /// Final memory.
    pub memory: Memory,
    /// Cycles spent in the region on one processor.
    pub region_cycles: u64,
    /// Dynamic per-site access counts inside the region.
    pub region_counts: DynCounts,
}

/// Deterministic initial memory for a procedure: every word gets a small
/// pseudo-random value derived from its address, so executions are
/// reproducible without any setup code.
pub fn initial_memory(proc: &Procedure) -> Memory {
    initial_memory_with_layout(&Layout::new(&proc.vars))
}

/// [`initial_memory`] for a layout that has already been built.
pub fn initial_memory_with_layout(layout: &Layout) -> Memory {
    Memory::init_with(layout, |addr| {
        let h = addr.0.wrapping_mul(2654435761).wrapping_add(12345) % 1009;
        (h as f64) / 251.0
    })
}

fn resolve<'a>(
    program: &'a Program,
    labeled: &LabeledRegion,
) -> Result<(&'a Procedure, &'a VarTable, Layout), SimError> {
    let proc = program
        .procedures
        .get(labeled.analysis.spec.proc.index())
        .ok_or_else(|| SimError::Region("procedure not found".to_string()))?;
    let layout = Layout::new(&proc.vars);
    Ok((proc, &proc.vars, layout))
}

fn region_iteration_values(
    vars: &VarTable,
    region: &refidem_ir::stmt::LoopStmt,
) -> Result<Vec<i64>, SimError> {
    let lower = region.lower.substitute_params(&|v| vars.param_value(v));
    let upper = region.upper.substitute_params(&|v| vars.param_value(v));
    if !lower.is_constant() || !upper.is_constant() {
        return Err(SimError::RegionBoundsNotConstant);
    }
    let (lo, hi, step) = (lower.constant, upper.constant, region.step);
    let mut values = Vec::new();
    let mut k = lo;
    loop {
        if (step > 0 && k > hi) || (step < 0 && k < hi) {
            break;
        }
        values.push(k);
        k += step;
        if values.len() > 10_000_000 {
            return Err(SimError::Region("region trip count too large".to_string()));
        }
    }
    Ok(values)
}

/// Per-run tally of compilation-cache queries, copied into
/// [`SimReport::lowering_cache_hits`] / `_misses` at the end of a
/// simulation.
#[derive(Clone, Copy, Debug, Default)]
struct CacheTally {
    hits: u64,
    misses: u64,
}

impl CacheTally {
    fn count(&mut self, hit: bool) {
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }
}

/// Statement budget of the sequential (non-engine) portions of a run.
const SEQ_STEP_BUDGET: usize = 200_000_000;

fn run_stmts_plain(
    vars: &VarTable,
    layout: &Layout,
    stmts: &[refidem_ir::stmt::Stmt],
    memory: &mut Memory,
    cfg: &SimConfig,
    key: LowerKey,
    tally: &mut CacheTally,
) -> Result<(), SimError> {
    if stmts.is_empty() {
        return Ok(());
    }
    let mut store = PlainStore::new(memory);
    match cfg.backend {
        ExecBackend::Lowered => {
            let (lowered, hit) = cfg.cache.get_or_lower(key, || lower(vars, layout, stmts));
            tally.count(hit);
            LoweredSegmentExec::new(&lowered, &[])
                .run(&mut store, SEQ_STEP_BUDGET)
                .map_err(SimError::Exec)
        }
        ExecBackend::TreeWalk => SegmentExec::new(vars, layout, stmts, &[])
            .run(&mut store, SEQ_STEP_BUDGET)
            .map_err(SimError::Exec),
    }
}

/// Runs the labeled region's procedure fully sequentially, timing the region
/// with the non-speculative latency of `cfg` and collecting dynamic
/// reference counts inside the region.
pub fn run_sequential(
    program: &Program,
    labeled: &LabeledRegion,
    cfg: &SimConfig,
) -> Result<SeqOutcome, SimError> {
    let (proc, vars, layout) = resolve(program, labeled)?;
    let label = &labeled.analysis.spec.loop_label;
    let (before, region, after) = proc
        .split_at_loop(label)
        .ok_or_else(|| SimError::Region(format!("region `{label}` is not a top-level loop")))?;
    let mut memory = initial_memory_with_layout(&layout);
    // The sequential baseline still compiles through the cache, but its
    // outcome has no statistics report to surface the traffic on — the
    // tally is deliberately discarded ([`SimReport`]'s counters cover the
    // speculative runs, which is where sweeps spend their time).
    let mut tally = CacheTally::default();
    run_stmts_plain(
        vars,
        &layout,
        before,
        &mut memory,
        cfg,
        LowerKey::new(proc, label, LowerUnit::Prologue),
        &mut tally,
    )?;
    // Time the region on one processor: every access costs `lat_nonspec`
    // and every statement unit `stmt_cost`, so the cycle count follows
    // directly from the dynamic counts — no separate timing store needed.
    let (region_cycles, counts) = {
        let mut store = CountingStore::new(PlainStore::new(&mut memory));
        let region_stmt = std::slice::from_ref(
            proc.body
                .iter()
                .find(|s| matches!(s, refidem_ir::stmt::Stmt::Loop(l) if l.label.as_deref() == Some(label.as_str())))
                .expect("region loop present"),
        );
        let steps = match cfg.backend {
            ExecBackend::Lowered => {
                let (lowered, hit) = cfg
                    .cache
                    .get_or_lower(LowerKey::new(proc, label, LowerUnit::RegionLoop), || {
                        lower(vars, &layout, region_stmt)
                    });
                tally.count(hit);
                let mut exec = LoweredSegmentExec::new(&lowered, &[]);
                exec.run(&mut store, cfg.max_statements as usize)
                    .map_err(SimError::Exec)?;
                exec.steps()
            }
            ExecBackend::TreeWalk => {
                let mut exec = SegmentExec::new(vars, &layout, region_stmt, &[]);
                exec.run(&mut store, cfg.max_statements as usize)
                    .map_err(SimError::Exec)?;
                exec.steps()
            }
        };
        let accesses: u64 = store.counts.values().map(|(r, w)| r + w).sum();
        (
            accesses * cfg.lat_nonspec + steps as u64 * cfg.stmt_cost,
            store.counts,
        )
    };
    let _ = region;
    run_stmts_plain(
        vars,
        &layout,
        after,
        &mut memory,
        cfg,
        LowerKey::new(proc, label, LowerUnit::Epilogue),
        &mut tally,
    )?;
    Ok(SeqOutcome {
        memory,
        region_cycles,
        region_counts: counts,
    })
}

/// Simulates the labeled region under the given execution model.
pub fn simulate_region(
    program: &Program,
    labeled: &LabeledRegion,
    mode: ExecMode,
    cfg: &SimConfig,
) -> Result<SimOutcome, SimError> {
    let (proc, vars, layout) = resolve(program, labeled)?;
    let label = &labeled.analysis.spec.loop_label;
    let (before, region, after) = proc
        .split_at_loop(label)
        .ok_or_else(|| SimError::Region(format!("region `{label}` is not a top-level loop")))?;
    let mut memory = initial_memory_with_layout(&layout);
    let mut tally = CacheTally::default();
    run_stmts_plain(
        vars,
        &layout,
        before,
        &mut memory,
        cfg,
        LowerKey::new(proc, label, LowerUnit::Prologue),
        &mut tally,
    )?;
    let iter_values = region_iteration_values(vars, region)?;
    // Compile the region body once per *process* (the config's cache is
    // shared, keyed by procedure identity + region label): every segment,
    // every re-execution after a roll-back, every capacity point of a
    // sweep and every repeated call replays the same bytecode. The region
    // index's value interval is supplied so subscripts mentioning it can
    // be proven in bounds and fused to flat affine addresses; the interval
    // derives from the region loop's constant bounds, so it is the same
    // for every call that shares the cache key.
    let lowered = match cfg.backend {
        ExecBackend::Lowered => {
            let index_ranges: Vec<_> = match (iter_values.iter().min(), iter_values.iter().max()) {
                (Some(&lo), Some(&hi)) => vec![(region.index, (lo, hi))],
                _ => Vec::new(),
            };
            let (lowered, hit) = cfg
                .cache
                .get_or_lower(LowerKey::new(proc, label, LowerUnit::RegionBody), || {
                    lower_with_ranges(vars, &layout, &region.body, &index_ranges)
                });
            tally.count(hit);
            Some(lowered)
        }
        ExecBackend::TreeWalk => None,
    };
    let mut report = Engine::new(
        cfg,
        mode,
        &labeled.labeling,
        vars,
        &layout,
        region,
        lowered.as_deref(),
        iter_values,
        &mut memory,
    )
    .run()?;
    run_stmts_plain(
        vars,
        &layout,
        after,
        &mut memory,
        cfg,
        LowerKey::new(proc, label, LowerUnit::Epilogue),
        &mut tally,
    )?;
    report.lowering_cache_hits = tally.hits;
    report.lowering_cache_misses = tally.misses;
    Ok(SimOutcome { report, memory })
}

/// Runs the sequential baseline, HOSE and CASE for one region and packages
/// the speedups (the (b)-panels of Figures 6–9).
pub fn compare_modes(
    program: &Program,
    labeled: &LabeledRegion,
    cfg: &SimConfig,
) -> Result<SpeedupComparison, SimError> {
    let seq = run_sequential(program, labeled, cfg)?;
    let hose = simulate_region(program, labeled, ExecMode::Hose, cfg)?;
    let case = simulate_region(program, labeled, ExecMode::Case, cfg)?;
    Ok(SpeedupComparison {
        region: labeled.analysis.spec.loop_label.clone(),
        sequential_cycles: seq.region_cycles,
        hose: hose.report,
        case: case.report,
    })
}

/// Checks the simulator's functional correctness (Lemmas 1 and 2 as a test):
/// the final memory of a speculative run must equal the final memory of the
/// sequential run on every address except those belonging to variables the
/// region classifies as private (private locations are dead at region exit
/// and live in per-segment storage under CASE).
///
/// Returns the list of differing addresses (empty on success).
pub fn verify_against_sequential(
    program: &Program,
    labeled: &LabeledRegion,
    mode: ExecMode,
    cfg: &SimConfig,
) -> Result<Vec<(Addr, f64, f64)>, SimError> {
    let (proc, _vars, layout) = resolve(program, labeled)?;
    let seq = run_sequential(program, labeled, cfg)?;
    let sim = simulate_region(program, labeled, mode, cfg)?;
    // Addresses of private variables are excluded from the comparison.
    let mut ignored: Vec<(u64, u64)> = Vec::new();
    for (v, class) in labeled.analysis.classes.iter() {
        if class == VarClass::Private {
            let base = layout.base(v).0;
            let size = proc.vars.kind(v).size() as u64;
            ignored.push((base, base + size));
        }
    }
    let diffs = seq
        .memory
        .diff(&sim.memory, usize::MAX)
        .into_iter()
        .filter(|(addr, _, _)| !ignored.iter().any(|(lo, hi)| addr.0 >= *lo && addr.0 < *hi))
        .collect();
    Ok(diffs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use refidem_core::label::label_program_region_by_name;
    use refidem_ir::build::{ac, add, av, mul, num, ProcBuilder};
    use refidem_ir::program::Program;

    /// do k = 2, 33:  a(k) = a(k-1) + b(k)   — a cross-segment flow
    /// dependence chain plus a read-only array.
    fn recurrence_program() -> Program {
        let mut b = ProcBuilder::new("main");
        let a = b.array("a", &[40]);
        let bb = b.array("b", &[40]);
        let k = b.index("k");
        b.live_out(&[a]);
        let rhs = add(
            b.load_elem(a, vec![av(k) - ac(1)]),
            b.load_elem(bb, vec![av(k)]),
        );
        let s = b.assign_elem(a, vec![av(k)], rhs);
        let region = b.do_loop_labeled("REC", k, ac(2), ac(33), vec![s]);
        let mut p = Program::new("recurrence");
        p.add_procedure(b.build(vec![region]));
        p
    }

    /// A wide, independent-per-iteration loop with many distinct addresses
    /// per iteration: overflows small speculative storage under HOSE, but
    /// most references are read-only/idempotent under CASE.
    fn wide_program() -> Program {
        let mut b = ProcBuilder::new("main");
        let src = b.array("src", &[20 * 40]);
        let dst = b.array("dst", &[40]);
        let acc = b.scalar("acc");
        let k = b.index("k");
        let j = b.index("j");
        b.live_out(&[dst]);
        // acc = 0; do j = 1, 20 { acc = acc + src(20*(k-1)+j) } ; dst(k) = acc
        let init = b.assign_scalar(acc, num(0.0));
        let src_sub = AffineBuilder::wide_subscript(k, j);
        let rhs = add(b.load(acc), b.load_elem(src, vec![src_sub]));
        let body_stmt = b.assign_scalar(acc, rhs);
        let inner = b.do_loop(j, ac(1), ac(20), vec![body_stmt]);
        let rhs2 = b.load(acc);
        let fin = b.assign_elem(dst, vec![av(k)], rhs2);
        let region = b.do_loop_labeled("WIDE", k, ac(1), ac(40), vec![init, inner, fin]);
        let mut p = Program::new("wide");
        p.add_procedure(b.build(vec![region]));
        p
    }

    /// Helper building `20*(k-1) + j` without pulling the builder into
    /// the affine module.
    struct AffineBuilder;
    impl AffineBuilder {
        fn wide_subscript(
            k: refidem_ir::ids::VarId,
            j: refidem_ir::ids::VarId,
        ) -> refidem_ir::affine::AffineExpr {
            refidem_ir::affine::AffineExpr::scaled_var(k, 20) + av(j) - ac(20)
        }
    }

    #[test]
    fn hose_matches_sequential_execution_on_a_recurrence() {
        let p = recurrence_program();
        let labeled = label_program_region_by_name(&p, "REC").unwrap();
        let cfg = SimConfig::default();
        let diffs = verify_against_sequential(&p, &labeled, ExecMode::Hose, &cfg).unwrap();
        assert!(diffs.is_empty(), "HOSE must match sequential: {diffs:?}");
    }

    #[test]
    fn case_matches_sequential_execution_on_a_recurrence() {
        let p = recurrence_program();
        let labeled = label_program_region_by_name(&p, "REC").unwrap();
        let cfg = SimConfig::default();
        let diffs = verify_against_sequential(&p, &labeled, ExecMode::Case, &cfg).unwrap();
        assert!(diffs.is_empty(), "CASE must match sequential: {diffs:?}");
    }

    #[test]
    fn violations_and_rollbacks_occur_on_the_recurrence_under_hose() {
        let p = recurrence_program();
        let labeled = label_program_region_by_name(&p, "REC").unwrap();
        let cfg = SimConfig::default();
        let out = simulate_region(&p, &labeled, ExecMode::Hose, &cfg).unwrap();
        assert!(
            out.report.violations > 0,
            "the flow dependence chain must trigger violations"
        );
        assert!(out.report.rollbacks > 0);
        assert_eq!(out.report.commits as usize, out.report.segments);
    }

    #[test]
    fn small_speculative_storage_overflows_under_hose_but_not_case() {
        let p = wide_program();
        let labeled = label_program_region_by_name(&p, "WIDE").unwrap();
        // Each iteration touches ~22 distinct addresses; capacity 8 forces
        // overflow under HOSE.
        let cfg = SimConfig::default().capacity(8);
        let hose = simulate_region(&p, &labeled, ExecMode::Hose, &cfg).unwrap();
        let case = simulate_region(&p, &labeled, ExecMode::Case, &cfg).unwrap();
        assert!(hose.report.overflow_stalls > 0, "HOSE must overflow");
        assert!(
            case.report.overflow_stalls == 0,
            "CASE labels the src reads idempotent and avoids overflow"
        );
        assert!(
            case.report.region_cycles < hose.report.region_cycles,
            "CASE must be faster when HOSE overflows (case {} vs hose {})",
            case.report.region_cycles,
            hose.report.region_cycles
        );
        // Both are functionally correct.
        for mode in [ExecMode::Hose, ExecMode::Case] {
            let diffs = verify_against_sequential(&p, &labeled, mode, &cfg).unwrap();
            assert!(diffs.is_empty(), "{mode} must match sequential: {diffs:?}");
        }
    }

    #[test]
    fn compare_modes_reports_speedups() {
        let p = wide_program();
        let labeled = label_program_region_by_name(&p, "WIDE").unwrap();
        let cfg = SimConfig::default().capacity(8);
        let cmp = compare_modes(&p, &labeled, &cfg).unwrap();
        assert!(cmp.sequential_cycles > 0);
        assert!(cmp.case_speedup() > cmp.hose_speedup());
        assert!(cmp.case_speedup() > 1.0, "CASE should beat one processor");
    }

    #[test]
    fn fully_speculative_loop_without_dependences_still_commits_in_order() {
        // do k = 1, 16: c(k) = c(k) * 2 — independent; HOSE should get a
        // speedup > 1 with adequate storage and no violations.
        let mut b = ProcBuilder::new("main");
        let c = b.array("c", &[16]);
        let k = b.index("k");
        b.live_out(&[c]);
        let rhs = mul(b.load_elem(c, vec![av(k)]), num(2.0));
        let s = b.assign_elem(c, vec![av(k)], rhs);
        let region = b.do_loop_labeled("IND", k, ac(1), ac(16), vec![s]);
        let mut p = Program::new("ind");
        p.add_procedure(b.build(vec![region]));
        let labeled = label_program_region_by_name(&p, "IND").unwrap();
        assert!(labeled.labeling.fully_independent);
        let cfg = SimConfig::default();
        let cmp = compare_modes(&p, &labeled, &cfg).unwrap();
        assert_eq!(cmp.hose.violations, 0);
        assert_eq!(cmp.case.violations, 0);
        assert!(cmp.hose_speedup() > 1.0);
        assert!(cmp.case_speedup() > 1.0);
        for mode in [ExecMode::Hose, ExecMode::Case] {
            let diffs = verify_against_sequential(&p, &labeled, mode, &cfg).unwrap();
            assert!(diffs.is_empty());
        }
    }

    #[test]
    fn private_variables_use_private_storage_under_case() {
        // do k: { t = b(k); a(k) = t * 2 } — t is private.
        let mut b = ProcBuilder::new("main");
        let a = b.array("a", &[24]);
        let bb = b.array("b", &[24]);
        let t = b.scalar("t");
        let k = b.index("k");
        b.live_out(&[a]);
        let rhs1 = b.load_elem(bb, vec![av(k)]);
        let s1 = b.assign_scalar(t, rhs1);
        let rhs2 = mul(b.load(t), num(2.0));
        let s2 = b.assign_elem(a, vec![av(k)], rhs2);
        let region = b.do_loop_labeled("PRIV", k, ac(1), ac(24), vec![s1, s2]);
        let mut p = Program::new("priv");
        p.add_procedure(b.build(vec![region]));
        let labeled = label_program_region_by_name(&p, "PRIV").unwrap();
        let cfg = SimConfig::default();
        let case = simulate_region(&p, &labeled, ExecMode::Case, &cfg).unwrap();
        assert!(case.report.private_reads > 0);
        assert!(case.report.private_writes > 0);
        let diffs = verify_against_sequential(&p, &labeled, ExecMode::Case, &cfg).unwrap();
        assert!(
            diffs.is_empty(),
            "private values are excluded from comparison: {diffs:?}"
        );
        // Under HOSE everything goes to speculative storage.
        let hose = simulate_region(&p, &labeled, ExecMode::Hose, &cfg).unwrap();
        assert_eq!(hose.report.private_reads, 0);
        assert_eq!(hose.report.nonspec_writes, 0);
    }

    #[test]
    fn single_processor_configuration_degenerates_gracefully() {
        let p = recurrence_program();
        let labeled = label_program_region_by_name(&p, "REC").unwrap();
        let cfg = SimConfig::default().processors(1);
        let out = simulate_region(&p, &labeled, ExecMode::Hose, &cfg).unwrap();
        assert_eq!(out.report.violations, 0, "one processor cannot violate");
        let diffs = verify_against_sequential(&p, &labeled, ExecMode::Hose, &cfg).unwrap();
        assert!(diffs.is_empty());
    }

    #[test]
    fn capacity_sweeps_compile_the_region_exactly_once() {
        use refidem_ir::lowered::LoweredCache;
        let p = wide_program();
        let labeled = label_program_region_by_name(&p, "WIDE").unwrap();
        let cache = LoweredCache::fresh();
        let base = SimConfig::default().cache(cache.clone());

        // First simulation compiles (the program has no prologue/epilogue,
        // so the region body is the only query); every further point of
        // the ladder — any capacity, either mode — hits.
        let first = simulate_region(&p, &labeled, ExecMode::Hose, &base).unwrap();
        assert_eq!(first.report.lowering_cache_misses, 1);
        assert_eq!(first.report.lowering_cache_hits, 0);
        for capacity in [1, 2, 4, 16, 256] {
            for mode in [ExecMode::Hose, ExecMode::Case] {
                let cfg = base.clone().capacity(capacity);
                let out = simulate_region(&p, &labeled, mode, &cfg).unwrap();
                assert_eq!(
                    out.report.lowering_cache_misses, 0,
                    "{mode} @ {capacity} recompiled"
                );
                assert_eq!(out.report.lowering_cache_hits, 1);
            }
        }
        // One region body entry; the sequential baseline adds its own
        // whole-loop unit, and a *different* region gets its own entries.
        assert_eq!(cache.len(), 1);
        run_sequential(&p, &labeled, &base).unwrap();
        assert_eq!(cache.len(), 2);
        let other = recurrence_program();
        let other_labeled = label_program_region_by_name(&other, "REC").unwrap();
        let out = simulate_region(&other, &other_labeled, ExecMode::Case, &base).unwrap();
        assert_eq!(out.report.lowering_cache_misses, 1);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn oracle_backend_never_touches_the_compilation_cache() {
        use refidem_ir::lowered::LoweredCache;
        let p = recurrence_program();
        let labeled = label_program_region_by_name(&p, "REC").unwrap();
        let cache = LoweredCache::fresh();
        let cfg = SimConfig::default().cache(cache.clone()).oracle();
        let out = simulate_region(&p, &labeled, ExecMode::Hose, &cfg).unwrap();
        assert_eq!(out.report.lowering_cache_hits, 0);
        assert_eq!(out.report.lowering_cache_misses, 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn region_bounds_must_be_constant() {
        // do k = 1, n where n is a scalar variable (not a parameter).
        let mut b = ProcBuilder::new("main");
        let a = b.array("a", &[8]);
        let n = b.scalar("n");
        let k = b.index("k");
        let s = b.assign_elem(a, vec![av(k)], num(1.0));
        let region = b.do_loop_labeled("VARB", k, ac(1), av(n), vec![s]);
        let mut p = Program::new("varb");
        p.add_procedure(b.build(vec![region]));
        let labeled = label_program_region_by_name(&p, "VARB").unwrap();
        let err = simulate_region(&p, &labeled, ExecMode::Hose, &SimConfig::default()).unwrap_err();
        assert_eq!(err, SimError::RegionBoundsNotConstant);
    }
}
