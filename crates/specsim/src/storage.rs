//! Speculative storage buffers.
//!
//! Each in-flight segment owns one bounded [`SpecBuffer`] (HOSE Property 4:
//! "Each segment has its own speculative storage. It is empty at the
//! beginning of each segment's execution and after each roll-back").
//! Entries hold both data values and the reference-tracking information the
//! speculation engine needs (HOSE Property 5): whether the location was
//! written, whether it was read *exposed* (the value came from outside the
//! segment — the reads that can violate cross-segment flow dependences), and
//! when the first exposed read happened.
//!
//! The buffer is a **dense, epoch-versioned shadow array** over the
//! procedure's flat address space: [`Layout`](refidem_ir::memory::Layout)
//! assigns every data word a dense address in `0..total_words`, so lookup
//! and allocation are direct array indexing instead of a `BTreeMap`
//! traversal. A per-buffer epoch counter plus per-address generation
//! stamps make [`SpecBuffer::clear`] (roll-back/commit) O(1) — stale
//! entries are invalidated by bumping the epoch, not by touching them —
//! and a journal of the addresses touched in the current epoch makes
//! occupancy tracking, overflow checks and [`SpecBuffer::dirty_entries`]
//! proportional to the number of *touched* entries, never to the address
//! space.

use refidem_ir::memory::Addr;

/// One speculative-storage entry.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SpecEntry {
    /// Latest value written or read into the entry.
    pub value: f64,
    /// The segment wrote this location (the entry is dirty and will be
    /// committed).
    pub written: bool,
    /// The segment performed an exposed read of this location (the value
    /// was consumed from an ancestor segment or from non-speculative
    /// storage before any local write).
    pub exposed_read: bool,
    /// Time of the first exposed read (for diagnostics; any exposed read is
    /// premature with respect to a later older-segment write).
    pub first_read_time: u64,
    /// Time of the most recent write (used to detect reads that execute
    /// before an older segment's write in simulated time even though the
    /// write was processed first).
    pub last_write_time: u64,
}

/// Per-address slot of the dense index: the epoch the address was last
/// touched in, and where its entry lives in the compact journal.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
struct IndexSlot {
    stamp: u32,
    pos: u32,
}

/// A bounded, per-segment speculative storage buffer over a dense address
/// space of `0..address_words`.
///
/// Layout: a dense 8-byte-per-word *index* (`(epoch stamp, position)`),
/// plus a compact journal of `(address, entry)` pairs in touch order whose
/// length is bounded by the buffer capacity. Lookups are O(1) array
/// indexing; allocation appends to the journal; `clear` bumps the epoch
/// (O(1)) so a fresh segment pays only the index allocation — and the
/// engine pools buffers across segments, so even that happens once per
/// processor.
///
/// ```
/// use refidem_specsim::SpecBuffer;
/// use refidem_ir::memory::Addr;
///
/// let mut buf = SpecBuffer::new(2, 16);
/// buf.record_exposed_read(Addr(3), 1.5, 10);
/// buf.record_write(Addr(7), 2.0, 11);
/// assert!(buf.has_exposed_read(Addr(3)) && buf.has_written(Addr(7)));
/// assert!(buf.would_overflow(Addr(9)), "capacity 2 is full");
/// assert_eq!(buf.dirty_entries(), vec![(Addr(7), 2.0)]);
/// buf.clear(); // O(1) epoch bump, e.g. on roll-back
/// assert!(buf.is_empty());
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpecBuffer {
    index: Vec<IndexSlot>,
    journal: Vec<(u64, SpecEntry)>,
    epoch: u32,
    capacity: usize,
    peak: usize,
}

impl SpecBuffer {
    /// Creates an empty buffer with the given capacity (in entries) over an
    /// address space of `address_words` words (the owning procedure's
    /// [`Layout::total_words`](refidem_ir::memory::Layout::total_words)).
    pub fn new(capacity: usize, address_words: u64) -> Self {
        let words = address_words as usize;
        SpecBuffer {
            index: vec![IndexSlot::default(); words],
            journal: Vec::with_capacity(capacity.min(words)),
            epoch: 1,
            capacity,
            peak: 0,
        }
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.journal.len()
    }

    /// True when no entry is occupied.
    pub fn is_empty(&self) -> bool {
        self.journal.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The address-space size (in words) the buffer was created over.
    pub fn address_words(&self) -> u64 {
        self.index.len() as u64
    }

    /// Re-targets an **empty** buffer at a different capacity, so a pooled
    /// buffer can be reused across sweep points without reallocating its
    /// dense index. Panics when entries are occupied (capacity changes
    /// mid-segment have no meaning).
    pub fn set_capacity(&mut self, capacity: usize) {
        assert!(
            self.journal.is_empty(),
            "capacity can only change on an empty buffer"
        );
        self.capacity = capacity;
    }

    /// Highest occupancy observed since the last clear.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// True when allocating one more (new) entry for `addr` would exceed the
    /// capacity.
    pub fn would_overflow(&self, addr: Addr) -> bool {
        self.index[addr.0 as usize].stamp != self.epoch && self.journal.len() >= self.capacity
    }

    /// Looks an entry up.
    #[inline]
    pub fn get(&self, addr: Addr) -> Option<&SpecEntry> {
        let slot = self.index[addr.0 as usize];
        if slot.stamp == self.epoch {
            Some(&self.journal[slot.pos as usize].1)
        } else {
            None
        }
    }

    /// True when the buffer holds a written (dirty) value for `addr`.
    #[inline]
    pub fn has_written(&self, addr: Addr) -> bool {
        self.get(addr).is_some_and(|e| e.written)
    }

    /// True when the buffer records an exposed read of `addr`.
    #[inline]
    pub fn has_exposed_read(&self, addr: Addr) -> bool {
        self.get(addr).is_some_and(|e| e.exposed_read)
    }

    /// Allocates (or revalidates) the entry for `addr` in the current epoch
    /// and returns it. The caller must have handled overflow beforehand.
    #[inline]
    fn entry_mut(&mut self, addr: Addr) -> &mut SpecEntry {
        let i = addr.0 as usize;
        if self.index[i].stamp != self.epoch {
            self.index[i] = IndexSlot {
                stamp: self.epoch,
                pos: self.journal.len() as u32,
            };
            self.journal.push((addr.0, SpecEntry::default()));
            self.peak = self.peak.max(self.journal.len());
        }
        &mut self.journal[self.index[i].pos as usize].1
    }

    /// Records a write performed at time `now`. The caller must have handled
    /// overflow beforehand (via [`SpecBuffer::would_overflow`]).
    pub fn record_write(&mut self, addr: Addr, value: f64, now: u64) {
        let entry = self.entry_mut(addr);
        entry.value = value;
        entry.written = true;
        entry.last_write_time = now;
    }

    /// Records an exposed read that obtained `value` from outside the
    /// segment at time `now`. The caller must have handled overflow
    /// beforehand.
    pub fn record_exposed_read(&mut self, addr: Addr, value: f64, now: u64) {
        let entry = self.entry_mut(addr);
        if !entry.exposed_read {
            entry.exposed_read = true;
            entry.first_read_time = now;
        }
        if !entry.written {
            entry.value = value;
        }
    }

    /// Values written by the segment, in address order (what a commit
    /// transfers to non-speculative storage). Iterates the journal, never
    /// the address space.
    pub fn dirty_entries(&self) -> Vec<(Addr, f64)> {
        let mut dirty: Vec<(Addr, f64)> = self
            .journal
            .iter()
            .filter(|(_, e)| e.written)
            .map(|(a, e)| (Addr(*a), e.value))
            .collect();
        dirty.sort_unstable_by_key(|(a, _)| *a);
        dirty
    }

    /// Number of dirty entries.
    pub fn dirty_count(&self) -> usize {
        self.journal.iter().filter(|(_, e)| e.written).count()
    }

    /// Addresses touched in the current epoch, in touch order (the engine
    /// uses this to retract its per-address dependence masks before a
    /// clear).
    pub fn touched_addrs(&self) -> impl Iterator<Item = Addr> + '_ {
        self.journal.iter().map(|(a, _)| Addr(*a))
    }

    /// Clears the buffer (roll-back or commit), keeping the capacity and
    /// resetting the peak statistic. O(1): the epoch bump invalidates every
    /// stale index slot at once.
    pub fn clear(&mut self) {
        self.journal.clear();
        self.peak = 0;
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch counter wrapped: physically reset the index once every
            // ~4 billion clears so stale stamps can never alias the new
            // epoch.
            self.index.fill(IndexSlot::default());
            self.epoch = 1;
        }
    }
}

/// Per-segment private storage (the per-segment private stacks of
/// Section 5), dense and epoch-versioned like [`SpecBuffer`]: a private
/// read hits the shadow array when the segment has privately written the
/// address in the current epoch, and `clear` is an O(1) epoch bump on
/// roll-back or commit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PrivateStore {
    index: Vec<IndexSlot>,
    values: Vec<f64>,
    epoch: u32,
}

impl PrivateStore {
    /// Creates an empty private store over `address_words` words.
    pub fn new(address_words: u64) -> Self {
        PrivateStore {
            index: vec![IndexSlot::default(); address_words as usize],
            values: Vec::new(),
            epoch: 1,
        }
    }

    /// The privately written value of `addr`, if any.
    #[inline]
    pub fn get(&self, addr: Addr) -> Option<f64> {
        let slot = self.index[addr.0 as usize];
        if slot.stamp == self.epoch {
            Some(self.values[slot.pos as usize])
        } else {
            None
        }
    }

    /// Records a private write.
    #[inline]
    pub fn insert(&mut self, addr: Addr, value: f64) {
        let i = addr.0 as usize;
        if self.index[i].stamp == self.epoch {
            self.values[self.index[i].pos as usize] = value;
        } else {
            self.index[i] = IndexSlot {
                stamp: self.epoch,
                pos: self.values.len() as u32,
            };
            self.values.push(value);
        }
    }

    /// Discards every private value (roll-back or commit).
    pub fn clear(&mut self) {
        self.values.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.index.fill(IndexSlot::default());
            self.epoch = 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Address-space size used by most tests.
    const WORDS: u64 = 64;

    #[test]
    fn writes_and_exposed_reads_are_tracked_separately() {
        let mut b = SpecBuffer::new(4, WORDS);
        b.record_exposed_read(Addr(10), 1.5, 7);
        assert!(b.has_exposed_read(Addr(10)));
        assert!(!b.has_written(Addr(10)));
        assert_eq!(b.get(Addr(10)).unwrap().value, 1.5);
        assert_eq!(b.get(Addr(10)).unwrap().first_read_time, 7);
        // A later write to the same address marks it dirty but keeps the
        // exposed-read flag (the premature read already happened).
        b.record_write(Addr(10), 2.0, 8);
        assert!(b.has_written(Addr(10)));
        assert!(b.has_exposed_read(Addr(10)));
        assert_eq!(b.get(Addr(10)).unwrap().value, 2.0);
        assert_eq!(b.get(Addr(10)).unwrap().last_write_time, 8);
        // A covered read (after a local write) does not set the exposed flag:
        // the engine simply does not call record_exposed_read in that case.
        assert_eq!(b.dirty_count(), 1);
    }

    #[test]
    fn exposed_read_does_not_clobber_written_value() {
        let mut b = SpecBuffer::new(4, WORDS);
        b.record_write(Addr(3), 9.0, 1);
        b.record_exposed_read(Addr(3), 1.0, 2);
        assert_eq!(b.get(Addr(3)).unwrap().value, 9.0);
    }

    #[test]
    fn capacity_and_peak_tracking() {
        let mut b = SpecBuffer::new(2, WORDS);
        assert!(!b.would_overflow(Addr(1)));
        b.record_write(Addr(1), 1.0, 1);
        b.record_write(Addr(2), 2.0, 2);
        assert!(b.would_overflow(Addr(3)));
        assert!(
            !b.would_overflow(Addr(1)),
            "existing entries never overflow"
        );
        assert_eq!(b.peak(), 2);
        assert_eq!(b.len(), 2);
        let dirty = b.dirty_entries();
        assert_eq!(dirty, vec![(Addr(1), 1.0), (Addr(2), 2.0)]);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.peak(), 0);
        assert_eq!(b.capacity(), 2);
    }

    #[test]
    fn first_read_time_is_preserved_across_repeated_reads() {
        let mut b = SpecBuffer::new(4, WORDS);
        b.record_exposed_read(Addr(5), 1.0, 10);
        b.record_exposed_read(Addr(5), 1.0, 99);
        assert_eq!(b.get(Addr(5)).unwrap().first_read_time, 10);
    }

    #[test]
    fn clear_invalidates_stale_entries_without_touching_them() {
        let mut b = SpecBuffer::new(4, WORDS);
        b.record_write(Addr(7), 1.0, 1);
        b.record_exposed_read(Addr(9), 2.0, 2);
        b.clear();
        // Epoch bump: every previous entry is invisible.
        assert_eq!(b.get(Addr(7)), None);
        assert!(!b.has_written(Addr(7)));
        assert!(!b.has_exposed_read(Addr(9)));
        assert_eq!(b.dirty_count(), 0);
        assert_eq!(b.dirty_entries().len(), 0);
        // Re-touching a stale address yields a fresh default entry.
        b.record_exposed_read(Addr(7), 5.0, 3);
        let e = b.get(Addr(7)).unwrap();
        assert!(!e.written, "stale written flag must not leak across epochs");
        assert_eq!(e.value, 5.0);
        assert_eq!(e.first_read_time, 3);
    }

    #[test]
    fn dirty_entries_are_sorted_by_address_regardless_of_touch_order() {
        let mut b = SpecBuffer::new(8, WORDS);
        b.record_write(Addr(30), 3.0, 1);
        b.record_write(Addr(5), 1.0, 2);
        b.record_exposed_read(Addr(12), 9.0, 3);
        b.record_write(Addr(20), 2.0, 4);
        let dirty = b.dirty_entries();
        assert_eq!(
            dirty,
            vec![(Addr(5), 1.0), (Addr(20), 2.0), (Addr(30), 3.0)]
        );
    }

    #[test]
    fn capacity_one_boundary_overflow_and_rollback() {
        // The smallest rung of the testkit's capacity ladder: one entry.
        let mut b = SpecBuffer::new(1, WORDS);
        assert!(!b.would_overflow(Addr(0)), "first allocation always fits");
        b.record_write(Addr(0), 1.0, 1);
        assert_eq!(b.len(), 1);
        assert_eq!(b.peak(), 1);
        // Any *other* address overflows; the resident one never does.
        assert!(b.would_overflow(Addr(1)));
        assert!(b.would_overflow(Addr(63)));
        assert!(!b.would_overflow(Addr(0)));
        b.record_exposed_read(Addr(0), 2.0, 2);
        assert_eq!(
            b.len(),
            1,
            "re-touching the resident entry allocates nothing"
        );
        // Roll-back: the buffer is empty again and the *other* address can
        // now take the single slot.
        b.clear();
        assert!(!b.would_overflow(Addr(1)));
        b.record_write(Addr(1), 7.0, 3);
        assert!(b.would_overflow(Addr(0)));
        assert_eq!(b.dirty_entries(), vec![(Addr(1), 7.0)]);
    }

    #[test]
    fn capacity_equal_to_address_space_never_overflows() {
        // The other boundary: capacity == total_words. Every address can be
        // resident simultaneously, so no access may ever overflow.
        let words = 16u64;
        let mut b = SpecBuffer::new(words as usize, words);
        for a in 0..words {
            assert!(!b.would_overflow(Addr(a)), "address {a} must fit");
            b.record_write(Addr(a), a as f64, a);
        }
        assert_eq!(b.len(), words as usize);
        assert_eq!(b.peak(), words as usize);
        // Full but every address is resident: still no overflow anywhere.
        for a in 0..words {
            assert!(!b.would_overflow(Addr(a)));
        }
        assert_eq!(b.dirty_count(), words as usize);
        let dirty = b.dirty_entries();
        assert_eq!(dirty.len(), words as usize);
        assert!(dirty.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
        b.clear();
        assert!(b.is_empty());
        assert!(!b.would_overflow(Addr(0)));
    }

    #[test]
    fn private_store_is_epoch_versioned() {
        let mut p = PrivateStore::new(WORDS);
        assert_eq!(p.get(Addr(4)), None);
        p.insert(Addr(4), 2.5);
        assert_eq!(p.get(Addr(4)), Some(2.5));
        p.insert(Addr(4), 3.5);
        assert_eq!(p.get(Addr(4)), Some(3.5));
        p.clear();
        assert_eq!(p.get(Addr(4)), None, "cleared values are invisible");
        p.insert(Addr(4), 1.0);
        assert_eq!(p.get(Addr(4)), Some(1.0));
    }

    #[test]
    fn epoch_wraparound_resets_stamps_safely() {
        let mut b = SpecBuffer::new(2, 4);
        // Force the epoch counter all the way around.
        b.record_write(Addr(0), 1.0, 1);
        b.epoch = u32::MAX;
        b.journal.clear();
        b.peak = 0;
        // Entry live in the last pre-wrap epoch.
        b.index[1] = IndexSlot {
            stamp: u32::MAX,
            pos: 0,
        };
        b.journal.push((
            1,
            SpecEntry {
                written: true,
                ..SpecEntry::default()
            },
        ));
        assert!(b.has_written(Addr(1)));
        b.clear();
        assert_eq!(b.epoch, 1, "wrapped past 0 back to 1");
        assert!(!b.has_written(Addr(1)), "pre-wrap entries are invisible");
        assert!(
            !b.has_written(Addr(0)),
            "stamps were physically reset, no aliasing with earlier epochs"
        );
    }
}
