//! Speculative storage buffers.
//!
//! Each in-flight segment owns one bounded [`SpecBuffer`] (HOSE Property 4:
//! "Each segment has its own speculative storage. It is empty at the
//! beginning of each segment's execution and after each roll-back").
//! Entries hold both data values and the reference-tracking information the
//! speculation engine needs (HOSE Property 5): whether the location was
//! written, whether it was read *exposed* (the value came from outside the
//! segment — the reads that can violate cross-segment flow dependences), and
//! when the first exposed read happened.

use refidem_ir::memory::Addr;
use std::collections::BTreeMap;

/// One speculative-storage entry.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SpecEntry {
    /// Latest value written or read into the entry.
    pub value: f64,
    /// The segment wrote this location (the entry is dirty and will be
    /// committed).
    pub written: bool,
    /// The segment performed an exposed read of this location (the value
    /// was consumed from an ancestor segment or from non-speculative
    /// storage before any local write).
    pub exposed_read: bool,
    /// Time of the first exposed read (for diagnostics; any exposed read is
    /// premature with respect to a later older-segment write).
    pub first_read_time: u64,
    /// Time of the most recent write (used to detect reads that execute
    /// before an older segment's write in simulated time even though the
    /// write was processed first).
    pub last_write_time: u64,
}

/// A bounded, per-segment speculative storage buffer.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpecBuffer {
    entries: BTreeMap<Addr, SpecEntry>,
    capacity: usize,
    peak: usize,
}

impl SpecBuffer {
    /// Creates an empty buffer with the given capacity (in entries).
    pub fn new(capacity: usize) -> Self {
        SpecBuffer {
            entries: BTreeMap::new(),
            capacity,
            peak: 0,
        }
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entry is occupied.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Highest occupancy observed since the last clear.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// True when allocating one more (new) entry for `addr` would exceed the
    /// capacity.
    pub fn would_overflow(&self, addr: Addr) -> bool {
        !self.entries.contains_key(&addr) && self.entries.len() >= self.capacity
    }

    /// Looks an entry up.
    pub fn get(&self, addr: Addr) -> Option<&SpecEntry> {
        self.entries.get(&addr)
    }

    /// True when the buffer holds a written (dirty) value for `addr`.
    pub fn has_written(&self, addr: Addr) -> bool {
        self.entries.get(&addr).map(|e| e.written).unwrap_or(false)
    }

    /// True when the buffer records an exposed read of `addr`.
    pub fn has_exposed_read(&self, addr: Addr) -> bool {
        self.entries
            .get(&addr)
            .map(|e| e.exposed_read)
            .unwrap_or(false)
    }

    /// Records a write performed at time `now`. The caller must have handled
    /// overflow beforehand (via [`SpecBuffer::would_overflow`]).
    pub fn record_write(&mut self, addr: Addr, value: f64, now: u64) {
        let entry = self.entries.entry(addr).or_default();
        entry.value = value;
        entry.written = true;
        entry.last_write_time = now;
        self.peak = self.peak.max(self.entries.len());
    }

    /// Records an exposed read that obtained `value` from outside the
    /// segment at time `now`. The caller must have handled overflow
    /// beforehand.
    pub fn record_exposed_read(&mut self, addr: Addr, value: f64, now: u64) {
        let entry = self.entries.entry(addr).or_default();
        if !entry.exposed_read {
            entry.exposed_read = true;
            entry.first_read_time = now;
        }
        if !entry.written {
            entry.value = value;
        }
        self.peak = self.peak.max(self.entries.len());
    }

    /// Values written by the segment, in address order (what a commit
    /// transfers to non-speculative storage).
    pub fn dirty_entries(&self) -> impl Iterator<Item = (Addr, f64)> + '_ {
        self.entries
            .iter()
            .filter(|(_, e)| e.written)
            .map(|(a, e)| (*a, e.value))
    }

    /// Number of dirty entries.
    pub fn dirty_count(&self) -> usize {
        self.entries.values().filter(|e| e.written).count()
    }

    /// Clears the buffer (roll-back or commit), keeping the capacity and
    /// resetting the peak statistic.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.peak = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_exposed_reads_are_tracked_separately() {
        let mut b = SpecBuffer::new(4);
        b.record_exposed_read(Addr(10), 1.5, 7);
        assert!(b.has_exposed_read(Addr(10)));
        assert!(!b.has_written(Addr(10)));
        assert_eq!(b.get(Addr(10)).unwrap().value, 1.5);
        assert_eq!(b.get(Addr(10)).unwrap().first_read_time, 7);
        // A later write to the same address marks it dirty but keeps the
        // exposed-read flag (the premature read already happened).
        b.record_write(Addr(10), 2.0, 8);
        assert!(b.has_written(Addr(10)));
        assert!(b.has_exposed_read(Addr(10)));
        assert_eq!(b.get(Addr(10)).unwrap().value, 2.0);
        assert_eq!(b.get(Addr(10)).unwrap().last_write_time, 8);
        // A covered read (after a local write) does not set the exposed flag:
        // the engine simply does not call record_exposed_read in that case.
        assert_eq!(b.dirty_count(), 1);
    }

    #[test]
    fn exposed_read_does_not_clobber_written_value() {
        let mut b = SpecBuffer::new(4);
        b.record_write(Addr(3), 9.0, 1);
        b.record_exposed_read(Addr(3), 1.0, 2);
        assert_eq!(b.get(Addr(3)).unwrap().value, 9.0);
    }

    #[test]
    fn capacity_and_peak_tracking() {
        let mut b = SpecBuffer::new(2);
        assert!(!b.would_overflow(Addr(1)));
        b.record_write(Addr(1), 1.0, 1);
        b.record_write(Addr(2), 2.0, 2);
        assert!(b.would_overflow(Addr(3)));
        assert!(
            !b.would_overflow(Addr(1)),
            "existing entries never overflow"
        );
        assert_eq!(b.peak(), 2);
        assert_eq!(b.len(), 2);
        let dirty: Vec<_> = b.dirty_entries().collect();
        assert_eq!(dirty, vec![(Addr(1), 1.0), (Addr(2), 2.0)]);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.peak(), 0);
        assert_eq!(b.capacity(), 2);
    }

    #[test]
    fn first_read_time_is_preserved_across_repeated_reads() {
        let mut b = SpecBuffer::new(4);
        b.record_exposed_read(Addr(5), 1.0, 10);
        b.record_exposed_read(Addr(5), 1.0, 99);
        assert_eq!(b.get(Addr(5)).unwrap().first_read_time, 10);
    }
}
