//! The sweep subsystem: declarative sweep plans executed by a sharded
//! worker pool with a deterministic ordered merge.
//!
//! The paper's evaluation is a matrix of (benchmark loop × speculation
//! model × buffer capacity) points, and every driver in this repository —
//! the figure tables, the ablation sweeps, the capacity ladders, the
//! testkit's differential suite — walks some slice of that matrix. With
//! the lowered-IR engine and the
//! [`LoweredCache`](refidem_ir::lowered::LoweredCache) the per-point cost
//! is small; *orchestration* is what bounds corpus size. This module is
//! the one orchestrator they all share:
//!
//! * [`SweepPlan`] — an ordered list of labeled, independent points. Each
//!   point is a pure `&P -> R` job: no point may depend on another point's
//!   result or on execution order.
//! * [`SweepExec`] — a std-only scoped-thread worker pool. The worker
//!   count comes from the builder ([`SweepExec::jobs`]), the
//!   `REFIDEM_JOBS` environment variable, or
//!   [`std::thread::available_parallelism`], in that order of precedence.
//! * **Deterministic ordered merge** — workers self-schedule points off a
//!   shared counter, but every result lands in its point's slot and
//!   [`SweepPlan::run`] returns results in *plan order*. Tables,
//!   aggregated statistics and JSON output built from the returned vector
//!   are therefore byte-identical regardless of the worker count. (The
//!   only per-point values that legitimately differ between runs are
//!   *measurements* — wall-clock fields and cache hit/miss counters,
//!   which depend on cross-thread compile races; consumers compare those
//!   on their own terms, as `backend_differential` does.)
//!
//! A panicking point job does not hang the pool: the panic is caught in
//! the worker, the remaining workers drain, and the panic is re-raised on
//! the calling thread with the point's label and index in the message.
//! When several points panic while the pool drains, the *plan-order-first*
//! one keeps its identity and the re-raised message counts the suppressed
//! rest — concurrent failures never silently overwrite each other.
//!
//! # Threading contract
//!
//! Everything a sweep point job typically captures is shareable across
//! workers: [`SimConfig`] is `Send + Sync` (it is plain data plus a
//! [`LoweredCache`](refidem_ir::lowered::LoweredCache) handle), and the
//! cache itself is an
//! `Arc<Mutex<..>>`-backed handle whose compile path is race-tolerant —
//! two workers missing on the same key both compile outside the lock and
//! one result wins, which is harmless because equal keys produce
//! identical bytecode. Per-run mutable state (`SpecBuffer` pools, private
//! stores, memories) is created inside each job, so workers never share
//! it. This is asserted at compile time in the tests below.
//!
//! ```
//! use refidem_specsim::sweep::{SweepExec, SweepPlan};
//!
//! let plan: SweepPlan<u64> = (0..100).map(|i| (format!("point {i}"), i)).collect();
//! let exec = SweepExec::new().jobs(4);
//! let doubled = plan.run(&exec, |&i| i * 2);
//! assert_eq!(doubled, (0..100).map(|i| i * 2).collect::<Vec<_>>());
//! ```

use crate::config::SimConfig;
use crate::run::ExecMode;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The environment variable that sets the default worker count.
pub const JOBS_ENV: &str = "REFIDEM_JOBS";

/// Parses a worker-count override (the format `REFIDEM_JOBS` and the
/// drivers' `--jobs` accept): a positive decimal integer. Anything else —
/// including `0` — is rejected.
pub fn parse_jobs(s: &str) -> Option<usize> {
    s.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// The worker count used when none is requested explicitly: `REFIDEM_JOBS`
/// when set and valid, otherwise the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::env::var(JOBS_ENV)
        .ok()
        .as_deref()
        .and_then(parse_jobs)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// A scoped-thread worker pool that executes [`SweepPlan`]s.
///
/// `SweepExec` is configuration, not threads: the pool is spawned inside
/// each [`SweepPlan::run`] call (via [`std::thread::scope`], so jobs may
/// borrow from the caller) and joined before it returns.
#[derive(Clone, Debug)]
pub struct SweepExec {
    jobs: usize,
}

impl Default for SweepExec {
    fn default() -> Self {
        SweepExec::new()
    }
}

impl SweepExec {
    /// An executor with the default worker count (`REFIDEM_JOBS`, then
    /// available parallelism).
    pub fn new() -> Self {
        SweepExec {
            jobs: default_jobs(),
        }
    }

    /// A single-worker executor: points run in plan order on the calling
    /// thread. Useful for nesting (a sweep job that itself runs a ladder
    /// plan stays sequential instead of oversubscribing the machine) and
    /// as the `jobs = 1` arm of determinism checks.
    pub fn sequential() -> Self {
        SweepExec { jobs: 1 }
    }

    /// Overrides the worker count. `0` restores the default
    /// ([`default_jobs`]).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = if jobs == 0 { default_jobs() } else { jobs };
        self
    }

    /// The number of workers a plan run will use (before clamping to the
    /// plan's point count).
    pub fn effective_jobs(&self) -> usize {
        self.jobs.max(1)
    }
}

/// One labeled point of a [`SweepPlan`]. The label identifies the point in
/// panic messages and progress output; the payload is whatever the job
/// needs (often just references into caller-owned data — plans are run
/// with scoped threads, so non-`'static` borrows are fine).
#[derive(Clone, Debug)]
pub struct SweepPoint<P> {
    /// Human-readable identity (e.g. `"FPPPP TWLDRV_DO100 cap 16 CASE"`).
    pub label: String,
    /// The job input.
    pub payload: P,
}

/// A declarative, ordered list of independent sweep points.
///
/// Build one with [`SweepPlan::point`], [`collect`](FromIterator) from an
/// iterator of `(label, payload)` pairs, or the [`ladder_plan`] helper for
/// the classic (capacity × execution mode) cartesian product. Execute it
/// with [`SweepPlan::run`].
#[derive(Clone, Debug, Default)]
pub struct SweepPlan<P> {
    points: Vec<SweepPoint<P>>,
}

impl<P> SweepPlan<P> {
    /// An empty plan.
    pub fn new() -> Self {
        SweepPlan { points: Vec::new() }
    }

    /// Appends a point and returns the plan (builder style).
    pub fn point(mut self, label: impl Into<String>, payload: P) -> Self {
        self.push(label, payload);
        self
    }

    /// Appends a point.
    pub fn push(&mut self, label: impl Into<String>, payload: P) {
        self.points.push(SweepPoint {
            label: label.into(),
            payload,
        });
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the plan has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points, in plan order.
    pub fn points(&self) -> &[SweepPoint<P>] {
        &self.points
    }

    /// Executes every point's job on `exec`'s worker pool and returns the
    /// results **in plan order** (the deterministic ordered merge).
    ///
    /// Workers pull point indices from a shared atomic counter; each
    /// result is stored in the slot of its point, and the slots are
    /// drained in order after the pool joins — so the returned vector is
    /// independent of the worker count and of scheduling. If a job
    /// panics, every worker stops picking up new points and the panic is
    /// re-raised here with the point's label and index.
    pub fn run<R, F>(&self, exec: &SweepExec, job: F) -> Vec<R>
    where
        P: Sync,
        R: Send,
        F: Fn(&P) -> R + Sync,
    {
        let n = self.points.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = exec.effective_jobs().min(n);
        if workers <= 1 {
            // Sequential fast path — same point-identity contract on
            // panic as the pool, without spawning a thread.
            return self
                .points
                .iter()
                .enumerate()
                .map(|(i, pt)| {
                    catch_unwind(AssertUnwindSafe(|| job(&pt.payload))).unwrap_or_else(|cause| {
                        panic!(
                            "sweep point `{}` (index {i} of {n}) panicked: {}",
                            pt.label,
                            panic_message(&*cause)
                        )
                    })
                })
                .collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let failed: Mutex<Option<(usize, String)>> = Mutex::new(None);
        let suppressed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if failed.lock().expect("sweep failure lock").is_some() {
                        return;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        return;
                    }
                    match catch_unwind(AssertUnwindSafe(|| job(&self.points[i].payload))) {
                        Ok(r) => *slots[i].lock().expect("sweep slot lock") = Some(r),
                        Err(cause) => {
                            let mut f = failed.lock().expect("sweep failure lock");
                            // Keep the plan-order-first panic. Claims are
                            // monotone, so every point below the minimal
                            // panicking index has executed — the winner is
                            // deterministic at any worker count. Losers
                            // (later panics racing the drain, or a winner
                            // a still-earlier panic displaces) are counted
                            // rather than dropped.
                            match f.as_mut() {
                                Some(prev) if i < prev.0 => {
                                    *prev = (i, panic_message(&*cause));
                                    suppressed.fetch_add(1, Ordering::Relaxed);
                                }
                                Some(_) => {
                                    suppressed.fetch_add(1, Ordering::Relaxed);
                                }
                                None => *f = Some((i, panic_message(&*cause))),
                            }
                            return;
                        }
                    }
                });
            }
        });
        if let Some((i, message)) = failed.into_inner().expect("sweep failure lock") {
            panic!(
                "sweep point `{}` (index {i} of {n}) panicked: {message}{}",
                self.points[i].label,
                suppressed_suffix(suppressed.load(Ordering::Relaxed))
            );
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("sweep slot lock")
                    .expect("every sweep point produced a result")
            })
            .collect()
    }

    /// [`SweepPlan::run`] for fallible jobs, with deterministic early
    /// exit: once any point returns `Err`, workers stop claiming further
    /// points, and the error returned is the **plan-order-first** one.
    ///
    /// The early exit is exact, not best-effort: workers claim indices in
    /// increasing order, so when a failure exists every point *below* the
    /// first failing index has already run — the reported error (or
    /// panic, which still propagates with the point's identity; when both
    /// occur the one earlier in plan order wins) is the same one a fully
    /// sequential run would have stopped at, at any worker count. On a
    /// single worker this degenerates to a plain short-circuiting loop —
    /// no work happens past the first failure.
    pub fn run_fallible<R, E, F>(&self, exec: &SweepExec, job: F) -> Result<Vec<R>, E>
    where
        P: Sync,
        R: Send,
        E: Send,
        F: Fn(&P) -> Result<R, E> + Sync,
    {
        let n = self.points.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let workers = exec.effective_jobs().min(n);
        if workers <= 1 {
            let mut out = Vec::with_capacity(n);
            for (i, pt) in self.points.iter().enumerate() {
                match catch_unwind(AssertUnwindSafe(|| job(&pt.payload))) {
                    Ok(Ok(r)) => out.push(r),
                    Ok(Err(e)) => return Err(e),
                    Err(cause) => panic!(
                        "sweep point `{}` (index {i} of {n}) panicked: {}",
                        pt.label,
                        panic_message(&*cause)
                    ),
                }
            }
            return Ok(out);
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<R, E>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let stop = std::sync::atomic::AtomicBool::new(false);
        let panicked: Mutex<Option<(usize, String)>> = Mutex::new(None);
        let suppressed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        return;
                    }
                    match catch_unwind(AssertUnwindSafe(|| job(&self.points[i].payload))) {
                        Ok(res) => {
                            if res.is_err() {
                                stop.store(true, Ordering::Relaxed);
                            }
                            *slots[i].lock().expect("sweep slot lock") = Some(res);
                        }
                        Err(cause) => {
                            stop.store(true, Ordering::Relaxed);
                            let mut p = panicked.lock().expect("sweep failure lock");
                            match p.as_mut() {
                                Some(prev) if i < prev.0 => {
                                    *prev = (i, panic_message(&*cause));
                                    suppressed.fetch_add(1, Ordering::Relaxed);
                                }
                                Some(_) => {
                                    suppressed.fetch_add(1, Ordering::Relaxed);
                                }
                                None => *p = Some((i, panic_message(&*cause))),
                            }
                            return;
                        }
                    }
                });
            }
        });
        // Ordered merge with failure resolution: the plan-order-first
        // failure — error or panic — wins. Unexecuted (cancelled) slots
        // form a strict suffix behind some failure, so they are never
        // reached.
        let panicked = panicked.into_inner().expect("sweep failure lock");
        let mut out = Vec::with_capacity(n);
        for (i, slot) in slots.into_iter().enumerate() {
            if let Some((pi, message)) = &panicked {
                if *pi == i {
                    panic!(
                        "sweep point `{}` (index {i} of {n}) panicked: {message}{}",
                        self.points[i].label,
                        suppressed_suffix(suppressed.load(Ordering::Relaxed))
                    );
                }
            }
            match slot.into_inner().expect("sweep slot lock") {
                Some(Ok(r)) => out.push(r),
                Some(Err(e)) => return Err(e),
                None => unreachable!("unexecuted sweep point not behind a failure"),
            }
        }
        Ok(out)
    }
}

impl<P, L: Into<String>> FromIterator<(L, P)> for SweepPlan<P> {
    fn from_iter<T: IntoIterator<Item = (L, P)>>(iter: T) -> Self {
        SweepPlan {
            points: iter
                .into_iter()
                .map(|(label, payload)| SweepPoint {
                    label: label.into(),
                    payload,
                })
                .collect(),
        }
    }
}

/// The suffix appended to a re-raised sweep panic when further points
/// panicked while the pool drained: empty for the common single-failure
/// case (so existing message-prefix expectations keep holding), a count
/// otherwise — concurrent failures are reported, never silently dropped.
fn suppressed_suffix(extra: usize) -> String {
    if extra == 0 {
        String::new()
    } else {
        format!(" ({extra} additional sweep point panic(s) suppressed while the pool drained)")
    }
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(cause: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = cause.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = cause.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// The declarative cartesian product behind every capacity-ladder sweep:
/// one point per `(capacity, mode)` pair (capacities outermost, matching
/// the order the hand-rolled loops used), each carrying a `SimConfig`
/// derived from `base` with that capacity.
pub fn ladder_plan(
    base: &SimConfig,
    capacities: &[usize],
    modes: &[ExecMode],
) -> SweepPlan<(SimConfig, ExecMode)> {
    capacities
        .iter()
        .flat_map(|&cap| {
            modes
                .iter()
                .map(move |&mode| (format!("cap {cap} {mode}"), (cap, mode)))
        })
        .map(|(label, (cap, mode))| (label, (base.clone().capacity(cap), mode)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use refidem_ir::lowered::LoweredCache;

    /// The `Send`/`Sync` contract workers rely on, checked at compile
    /// time: configs (with their cache handle) can be shared across
    /// workers, and plans/executors can move between threads.
    #[test]
    fn config_and_cache_are_shareable_across_workers() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimConfig>();
        assert_send_sync::<LoweredCache>();
        assert_send_sync::<SweepExec>();
        assert_send_sync::<SweepPlan<(SimConfig, ExecMode)>>();
    }

    #[test]
    fn empty_plan_returns_no_results() {
        let plan: SweepPlan<u32> = SweepPlan::new();
        assert!(plan.is_empty());
        let out = plan.run(&SweepExec::new().jobs(8), |_| unreachable!("no points"));
        assert!(out.is_empty());
    }

    #[test]
    fn single_point_runs_once() {
        let plan = SweepPlan::new().point("only", 21u64);
        assert_eq!(plan.len(), 1);
        let out = plan.run(&SweepExec::new().jobs(8), |&x| x * 2);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn more_workers_than_points_still_merges_in_order() {
        let plan: SweepPlan<usize> = (0..3).map(|i| (format!("p{i}"), i)).collect();
        let out = plan.run(&SweepExec::new().jobs(64), |&i| i + 100);
        assert_eq!(out, vec![100, 101, 102]);
    }

    #[test]
    fn results_are_identical_across_worker_counts() {
        let plan: SweepPlan<u64> = (0..257).map(|i| (format!("p{i}"), i)).collect();
        let expect: Vec<u64> = (0..257).map(|i| i * i + 1).collect();
        for jobs in [1, 2, 3, 8, 32] {
            let out = plan.run(&SweepExec::new().jobs(jobs), |&i| i * i + 1);
            assert_eq!(out, expect, "jobs = {jobs}");
        }
    }

    #[test]
    fn jobs_zero_restores_the_default() {
        let exec = SweepExec::new().jobs(0);
        assert_eq!(exec.effective_jobs(), default_jobs());
    }

    #[test]
    fn parse_jobs_accepts_positive_integers_only() {
        assert_eq!(parse_jobs("4"), Some(4));
        assert_eq!(parse_jobs(" 16 "), Some(16));
        assert_eq!(parse_jobs("0"), None);
        assert_eq!(parse_jobs("-2"), None);
        assert_eq!(parse_jobs("many"), None);
        assert_eq!(parse_jobs(""), None);
    }

    #[test]
    #[should_panic(expected = "sweep point `boom 5` (index 5 of 16) panicked: deliberate")]
    fn panicking_point_propagates_with_identity_in_parallel_pools() {
        let plan: SweepPlan<usize> = (0..16).map(|i| (format!("boom {i}"), i)).collect();
        plan.run(&SweepExec::new().jobs(4), |&i| {
            if i == 5 {
                panic!("deliberate");
            }
            i
        });
    }

    #[test]
    #[should_panic(expected = "sweep point `boom 2` (index 2 of 4) panicked: deliberate")]
    fn panicking_point_propagates_with_identity_sequentially() {
        let plan: SweepPlan<usize> = (0..4).map(|i| (format!("boom {i}"), i)).collect();
        plan.run(&SweepExec::sequential(), |&i| {
            if i == 2 {
                panic!("deliberate");
            }
            i
        });
    }

    #[test]
    fn pool_drains_after_a_panic_instead_of_hanging() {
        // Many points after the panicking one: the pool must terminate.
        let plan: SweepPlan<usize> = (0..500).map(|i| (format!("p{i}"), i)).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            plan.run(&SweepExec::new().jobs(8), |&i| {
                if i == 3 {
                    panic!("early failure");
                }
                i
            })
        }));
        let message = panic_message(&*result.expect_err("must propagate"));
        assert!(
            message.contains("early failure") && message.contains("index 3"),
            "unexpected panic message: {message}"
        );
    }

    #[test]
    fn concurrent_panics_keep_the_first_identity_and_count_the_rest() {
        // Both points are guaranteed to be mid-execution when either
        // panics (the barrier releases them together), so the second
        // panic always races the drain — the regression this guards:
        // it used to be silently dropped, now it is counted.
        let barrier = std::sync::Barrier::new(2);
        let plan: SweepPlan<usize> = (0..2).map(|i| (format!("boom {i}"), i)).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            plan.run(&SweepExec::new().jobs(2), |&i| {
                barrier.wait();
                panic!("deliberate {i}");
            })
        }));
        let message = panic_message(&*result.expect_err("must propagate"));
        assert!(
            message.contains("sweep point `boom 0` (index 0 of 2) panicked: deliberate 0"),
            "the plan-order-first panic keeps its identity: {message}"
        );
        assert!(
            message.contains("1 additional sweep point panic(s) suppressed"),
            "the drained panic is counted, not dropped: {message}"
        );
    }

    #[test]
    fn run_fallible_counts_concurrent_panics_too() {
        let barrier = std::sync::Barrier::new(2);
        let plan: SweepPlan<usize> = (0..2).map(|i| (format!("boom {i}"), i)).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _: Result<Vec<usize>, ()> = plan.run_fallible(&SweepExec::new().jobs(2), |&i| {
                barrier.wait();
                panic!("deliberate {i}");
            });
        }));
        let message = panic_message(&*result.expect_err("must propagate"));
        assert!(
            message.contains("index 0 of 2") && message.contains("deliberate 0"),
            "plan-order-first identity: {message}"
        );
        assert!(
            message.contains("1 additional sweep point panic(s) suppressed"),
            "suppressed count surfaces: {message}"
        );
    }

    #[test]
    fn ladder_plan_builds_the_cartesian_product_in_sweep_order() {
        let base = SimConfig::default();
        let plan = ladder_plan(&base, &[1, 16], &[ExecMode::Hose, ExecMode::Case]);
        let labels: Vec<&str> = plan.points().iter().map(|p| p.label.as_str()).collect();
        assert_eq!(
            labels,
            ["cap 1 HOSE", "cap 1 CASE", "cap 16 HOSE", "cap 16 CASE"]
        );
        for point in plan.points() {
            let (cfg, _) = &point.payload;
            assert_eq!(cfg.cache, base.cache, "points share the base cache");
            assert!(point.label.contains(&cfg.spec_capacity.to_string()));
        }
    }

    #[test]
    fn run_fallible_returns_all_results_in_order() {
        let plan: SweepPlan<u32> = (0..50).map(|i| (format!("p{i}"), i)).collect();
        for jobs in [1, 4] {
            let out: Result<Vec<u32>, ()> =
                plan.run_fallible(&SweepExec::new().jobs(jobs), |&i| Ok(i + 1));
            assert_eq!(out.unwrap(), (1..=50).collect::<Vec<_>>(), "jobs = {jobs}");
        }
    }

    #[test]
    fn run_fallible_short_circuits_sequentially() {
        let executed = AtomicUsize::new(0);
        let plan: SweepPlan<usize> = (0..100).map(|i| (format!("p{i}"), i)).collect();
        let out: Result<Vec<usize>, String> = plan.run_fallible(&SweepExec::sequential(), |&i| {
            executed.fetch_add(1, Ordering::Relaxed);
            if i == 3 {
                Err(format!("failed at {i}"))
            } else {
                Ok(i)
            }
        });
        assert_eq!(out.unwrap_err(), "failed at 3");
        assert_eq!(
            executed.load(Ordering::Relaxed),
            4,
            "nothing runs past the first failure on one worker"
        );
    }

    #[test]
    fn run_fallible_reports_the_plan_order_first_error_at_any_worker_count() {
        // Several failing points: the reported error must be the earliest
        // in plan order, never a scheduling-dependent later one.
        let plan: SweepPlan<usize> = (0..64).map(|i| (format!("p{i}"), i)).collect();
        for jobs in [1, 2, 8] {
            let executed = AtomicUsize::new(0);
            let out: Result<Vec<usize>, usize> =
                plan.run_fallible(&SweepExec::new().jobs(jobs), |&i| {
                    executed.fetch_add(1, Ordering::Relaxed);
                    if i == 7 || i == 9 || i == 40 {
                        Err(i)
                    } else {
                        Ok(i)
                    }
                });
            assert_eq!(out.unwrap_err(), 7, "jobs = {jobs}");
            assert!(
                executed.load(Ordering::Relaxed) < 64,
                "jobs = {jobs}: the pool kept claiming points after the failure"
            );
        }
    }

    #[test]
    #[should_panic(expected = "sweep point `p2` (index 2 of 8) panicked: fallible boom")]
    fn run_fallible_panic_beats_a_later_error_in_plan_order() {
        let plan: SweepPlan<usize> = (0..8).map(|i| (format!("p{i}"), i)).collect();
        let _: Result<Vec<usize>, usize> = plan.run_fallible(&SweepExec::sequential(), |&i| {
            if i == 2 {
                panic!("fallible boom");
            }
            if i == 5 {
                Err(i)
            } else {
                Ok(i)
            }
        });
    }

    #[test]
    fn jobs_can_borrow_caller_data() {
        let data: Vec<String> = (0..10).map(|i| format!("v{i}")).collect();
        let plan: SweepPlan<&String> = data.iter().map(|s| (s.clone(), s)).collect();
        let lens = plan.run(&SweepExec::new().jobs(3), |s| s.len());
        assert_eq!(lens, vec![2; 10]);
    }
}
