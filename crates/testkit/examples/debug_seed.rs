//! Scratch debugging driver: prints a generated program, its labels and the
//! differential outcome for a seed given on the command line.

use refidem_core::label::label_program;
use refidem_ir::ids::ProcId;
use refidem_specsim::{simulate_program, ExecMode, SimConfig};
use refidem_testkit::{check_generated, generate, DiffConfig};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let g = generate(seed);
    println!("== spec ==\n{:#?}", g.spec);
    println!(
        "== program ==\n{}",
        refidem_ir::pretty::program_to_string(&g.program)
    );
    let labeled = label_program(&g.program, ProcId::from_index(0)).expect("labels");
    println!("== schedule: {} region(s) ==", labeled.len());
    for region in &labeled.regions {
        println!("-- region {} --", region.analysis.spec.loop_label);
        for (id, l) in region.labeling.iter() {
            println!("  {:?}: {:?} ({:?})", id, l, region.labeling.access(id));
        }
        println!("classes: {:?}", region.analysis.classes);
        println!("deps: {} total", region.analysis.deps.len());
        for d in region.analysis.deps.deps() {
            println!("  {:?}", d);
        }
    }
    for cap in [1usize, 2, 4, 16, 256] {
        for mode in [ExecMode::Hose, ExecMode::Case] {
            let cfg = SimConfig::default().capacity(cap);
            let out = simulate_program(&g.program, &labeled, mode, &cfg).expect("sim");
            let r = &out.report;
            println!(
                "{mode} cap {cap}: serial {} parallel {} total {} (coverage {:.2})",
                r.serial_cycles,
                r.parallel_cycles(),
                r.total_cycles,
                r.coverage_fraction()
            );
            for (region, rr) in labeled.regions.iter().zip(&r.regions) {
                println!(
                    "   {}: segments {} commits {} violations {} rollbacks {} overflow {} peak {} restarts {}",
                    region.analysis.spec.loop_label,
                    rr.segments,
                    rr.commits,
                    rr.violations,
                    rr.rollbacks,
                    rr.overflow_stalls,
                    rr.spec_peak_occupancy,
                    rr.max_segment_restarts
                );
            }
        }
    }
    match check_generated(&g, &DiffConfig::default()) {
        Ok(s) => println!("differential: OK {s:?}"),
        Err(f) => println!("differential: FAIL {f}"),
    }

    // Trace every access to the address given as the second argument.
    let watch: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    use refidem_ir::exec::{DataStore, PlainStore, SegmentExec};
    use refidem_ir::memory::{Addr, Layout};
    use refidem_specsim::run::initial_memory;
    struct Watch<'m> {
        inner: PlainStore<'m>,
        watch: u64,
    }
    impl DataStore for Watch<'_> {
        fn read(&mut self, site: refidem_ir::ids::RefId, addr: Addr) -> f64 {
            let v = self.inner.read(site, addr);
            if addr.0 == self.watch {
                println!("  seq READ  @{} site {:?} -> {}", addr.0, site, v);
            }
            v
        }
        fn write(&mut self, site: refidem_ir::ids::RefId, addr: Addr, value: f64) {
            if addr.0 == self.watch {
                println!("  seq WRITE @{} site {:?} <- {}", addr.0, site, value);
            }
            self.inner.write(site, addr, value);
        }
    }
    let proc = &g.program.procedures[0];
    let layout = Layout::new(&proc.vars);
    let mut memory = initial_memory(proc);
    println!("init @{watch} = {}", memory.load(Addr(watch)));
    let mut store = Watch {
        inner: PlainStore::new(&mut memory),
        watch,
    };
    let mut exec = SegmentExec::new(&proc.vars, &layout, &proc.body, &[]);
    exec.run(&mut store, 1_000_000).expect("seq runs");
    println!("final seq @{watch} = {}", memory.load(Addr(watch)));
}
