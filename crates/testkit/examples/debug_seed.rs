//! Scratch debugging driver: prints a generated program, its labels and the
//! differential outcome for a seed given on the command line.

use refidem_core::label::label_program_region;
use refidem_specsim::{simulate_region, verify_against_sequential, ExecMode, SimConfig};
use refidem_testkit::{check_generated, generate, DiffConfig};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let g = generate(seed);
    println!("== spec ==\n{:#?}", g.spec);
    println!(
        "== program ==\n{}",
        refidem_ir::pretty::program_to_string(&g.program)
    );
    let labeled = label_program_region(&g.program, &g.region).expect("labels");
    println!("== labels ==");
    for (id, l) in labeled.labeling.iter() {
        println!("  {:?}: {:?} ({:?})", id, l, labeled.labeling.access(id));
    }
    println!("classes: {:?}", labeled.analysis.classes);
    println!("deps: {} total", labeled.analysis.deps.len());
    for d in labeled.analysis.deps.deps() {
        println!("  {:?}", d);
    }
    for cap in [1usize, 2, 4, 16, 256] {
        for mode in [ExecMode::Hose, ExecMode::Case] {
            let cfg = SimConfig::default().capacity(cap);
            match verify_against_sequential(&g.program, &labeled, mode, &cfg) {
                Ok(d) if d.is_empty() => println!("{mode} cap {cap}: OK"),
                Ok(d) => println!(
                    "{mode} cap {cap}: {} diffs {:?}",
                    d.len(),
                    &d[..d.len().min(4)]
                ),
                Err(e) => println!("{mode} cap {cap}: ERR {e}"),
            }
            let out = simulate_region(&g.program, &labeled, mode, &cfg).expect("sim");
            println!(
                "   segments {} commits {} violations {} rollbacks {} overflow {} peak {}",
                out.report.segments,
                out.report.commits,
                out.report.violations,
                out.report.rollbacks,
                out.report.overflow_stalls,
                out.report.spec_peak_occupancy
            );
        }
    }
    match check_generated(&g, &DiffConfig::default()) {
        Ok(s) => println!("differential: OK {s:?}"),
        Err(f) => println!("differential: FAIL {f}"),
    }

    // Trace every access to the address given as the second argument.
    let watch: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    use refidem_ir::exec::{DataStore, PlainStore, SegmentExec};
    use refidem_ir::memory::{Addr, Layout};
    use refidem_specsim::run::initial_memory;
    struct Watch<'m> {
        inner: PlainStore<'m>,
        watch: u64,
    }
    impl DataStore for Watch<'_> {
        fn read(&mut self, site: refidem_ir::ids::RefId, addr: Addr) -> f64 {
            let v = self.inner.read(site, addr);
            if addr.0 == self.watch {
                println!("  seq READ  @{} site {:?} -> {}", addr.0, site, v);
            }
            v
        }
        fn write(&mut self, site: refidem_ir::ids::RefId, addr: Addr, value: f64) {
            if addr.0 == self.watch {
                println!("  seq WRITE @{} site {:?} <- {}", addr.0, site, value);
            }
            self.inner.write(site, addr, value);
        }
    }
    let proc = &g.program.procedures[0];
    let layout = Layout::new(&proc.vars);
    let mut memory = initial_memory(proc);
    println!("init @{watch} = {}", memory.load(Addr(watch)));
    let mut store = Watch {
        inner: PlainStore::new(&mut memory),
        watch,
    };
    let mut exec = SegmentExec::new(&proc.vars, &layout, &proc.body, &[]);
    exec.run(&mut store, 1_000_000).expect("seq runs");
    println!("final seq @{watch} = {}", memory.load(Addr(watch)));
}
