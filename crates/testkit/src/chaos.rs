//! The chaos campaign: seeded fault schedules over the generated corpus.
//!
//! Every differential check in this crate proves byte-exactness on the
//! *happy* path. The chaos campaign proves the robustness contract: under
//! deterministic but adversarial fault schedules — forced dependence
//! violations, spurious squashes, forced buffer overflows, injected worker
//! panics and errors, scheduler perturbation — every run must still end in
//! one of exactly two states:
//!
//! 1. **byte-exact** final memory versus the sequential oracle (possibly
//!    after one or more regions transparently degraded to sequential
//!    re-execution when a [`Governor`] budget ran out), or
//! 2. a **clean structured error** the fault plan *scheduled* (an injected
//!    worker panic surfacing as
//!    [`SimError::WorkerPanic`](refidem_specsim::SimError), or an injected
//!    worker error surfacing as
//!    [`SimError::Injected`](refidem_specsim::SimError)).
//!
//! Anything else — a divergence, a hang, an unscheduled error, a lost
//! panic identity — is a failure of the runtime, and the campaign reports
//! it through the ordinary [`SuiteReport`] machinery.
//!
//! Schedules derive from [`FaultPlan::chaotic`]: program seed `k` pairs
//! with fault-schedule seed `k`, so a 1024-seed campaign exercises 1024
//! distinct schedules, each reproducible in isolation from its seed alone.

use crate::diff::DiffConfig;
use crate::{SuiteReport, SweepExec, SweepPlan};
use refidem_specsim::{FaultPlan, Governor};
use std::collections::BTreeSet;
use std::ops::Range;

/// Environment variable that switches scheduler perturbation on for the
/// chaos campaign (`"1"` enables it). Off by default because injected
/// yields and sleeps stretch wall-clock time; the nightly TSan job turns
/// it on to shake out rare interleavings under the race detector.
pub const CHAOS_PERTURB_ENV: &str = "REFIDEM_CHAOS_PERTURB";

/// True when [`CHAOS_PERTURB_ENV`] requests scheduler perturbation.
pub fn perturb_enabled() -> bool {
    std::env::var(CHAOS_PERTURB_ENV).as_deref() == Ok("1")
}

/// The fault schedule for one chaos run: the seed-derived chaotic mix
/// (violations, overflows, spurious squashes, and on some seeds a worker
/// panic or error), plus scheduler perturbation when
/// [`perturb_enabled`] says so.
pub fn chaos_plan(schedule_seed: u64) -> FaultPlan {
    let plan = FaultPlan::chaotic(schedule_seed);
    if perturb_enabled() {
        plan.perturb_rate(200)
    } else {
        plan
    }
}

/// The governor the campaign runs under: budgets small enough that hot
/// schedules actually trip them (exercising the serial fallback on real
/// corpus programs), large enough that mildly faulted runs still complete
/// speculatively.
pub fn chaos_governor() -> Governor {
    Governor::default()
        .restart_budget(24)
        .rollback_budget(512)
        .livelock_budget(2_000_000)
}

/// Derives the per-seed chaos configuration from a base differential
/// config: same processors/capacities/modes/backend/runtime, with the
/// seed's fault schedule and the campaign governor installed.
pub fn chaos_config(base: &DiffConfig, schedule_seed: u64) -> DiffConfig {
    DiffConfig {
        faults: chaos_plan(schedule_seed),
        governor: chaos_governor(),
        ..base.clone()
    }
}

/// Runs the chaos campaign: for every seed, generate the corpus program,
/// install the seed's fault schedule, and run the full differential check
/// (capacity ladder × modes, byte-exact or clean injected error). The
/// merge mirrors [`run_suite_with`](crate::run_suite_with) — ordered and
/// deterministic at any worker count.
pub fn run_chaos_suite(seeds: Range<u64>, base: &DiffConfig, exec: &SweepExec) -> SuiteReport {
    let plan: SweepPlan<u64> = seeds
        .map(|seed| (format!("chaos seed {seed}"), seed))
        .collect();
    let outcomes = plan.run(exec, |&seed| {
        let g = crate::generate(seed);
        let listing = refidem_ir::pretty::program_to_string(&g.program);
        let cfg = chaos_config(base, seed);
        (seed, listing, crate::check_generated(&g, &cfg))
    });
    let mut listings: BTreeSet<String> = BTreeSet::new();
    let mut stats = crate::DiffStats::default();
    let mut failures = Vec::new();
    let mut programs = 0usize;
    for (seed, listing, outcome) in outcomes {
        programs += 1;
        listings.insert(listing);
        match outcome {
            Ok(s) => stats.merge(&s),
            Err(f) => failures.push((seed, f)),
        }
    }
    SuiteReport {
        programs,
        distinct: listings.len(),
        stats,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_plans_are_reproducible_and_seed_sensitive() {
        assert_eq!(chaos_plan(7), chaos_plan(7));
        let distinct: BTreeSet<String> = (0..32).map(|s| format!("{:?}", chaos_plan(s))).collect();
        assert!(distinct.len() > 16, "schedules vary across seeds");
    }

    #[test]
    fn chaos_config_keeps_the_base_shape() {
        let base = DiffConfig {
            processors: 2,
            capacities: vec![1, 4],
            ..Default::default()
        };
        let cfg = chaos_config(&base, 3);
        assert_eq!(cfg.processors, 2);
        assert_eq!(cfg.capacities, vec![1, 4]);
        assert!(!cfg.faults.is_empty(), "a chaotic plan injects something");
        assert_eq!(cfg.governor, chaos_governor());
    }

    #[test]
    fn a_small_chaos_slice_is_clean() {
        let base = DiffConfig {
            capacities: vec![1, 4],
            ..Default::default()
        };
        let report = run_chaos_suite(0..16, &base, &SweepExec::sequential());
        assert_eq!(report.programs, 16);
        assert!(
            report.failures.is_empty(),
            "first failure: {:?}",
            report.failures.first()
        );
    }
}
