//! The differential runner: whole-program sequential vs HOSE vs CASE,
//! across a ladder of speculative-storage capacities.
//!
//! For one program the runner (1) discovers and labels **every** region of
//! the schedule with Algorithm 2 (`label_program`), (2) interprets the
//! whole procedure sequentially **on the tree-walking oracle backend** to
//! obtain the ground truth memory image, and (3) for every capacity in the
//! ladder and both execution models, simulates the whole program
//! (`simulate_program`, on the lowered bytecode backend by default, so
//! every check is also a lowered-vs-oracle differential) — serial chunks
//! sequentially, every region speculatively — and asserts:
//!
//! * **byte-exact equivalence** — the final non-speculative memory of the
//!   *whole program* equals the sequential image bit for bit
//!   (`f64::to_bits`), excluding only locations of region-private
//!   variables, which are dead at region exit and legitimately live in
//!   per-segment storage under CASE (Lemmas 1–2). A variable read by a
//!   later serial chunk or region is live-out and therefore never
//!   classified private, so the exclusion stays sound across the schedule;
//! * **capacity invariants** — per region: the peak speculative-storage
//!   occupancy never exceeds the configured capacity, and every segment
//!   commits exactly once;
//! * **rollback sanity** — per region: one processor can never observe a
//!   violation, and a run without violations performs no rollbacks;
//! * **livelock guard** — per region: no segment restarts more often than
//!   the run's roll-backs plus overflow stalls can pay for
//!   (`max_segment_restarts <= rollbacks + overflow_stalls`, and 0 when
//!   the run was clean);
//! * **forward progress** — the simulation terminates without deadlock and
//!   within the statement budget, even at capacity 1 (livelock would
//!   surface as `SimError::Deadlock` or `StatementBudgetExceeded`).
//!
//! The runner optionally *tampers* with the labeling before simulating —
//! promoting speculative references to idempotent, which is unsound — to
//! prove that the harness actually detects bad labels (and to hand the
//! shrinker something to minimize).
//!
//! The capacity ladder is a sweep, and sweeps are compile-once: every
//! simulation of one program pulls the region's lowered bytecode from one
//! shared [`LoweredCache`](refidem_ir::lowered::LoweredCache), so a
//! ladder lowers each region exactly once no matter how many capacity
//! points and modes it visits. Analysis is *analyze-once* the same way:
//! the labeling comes from one
//! [`AnalysisCache`](refidem_specsim::AnalysisCache), is differentially
//! checked bit-for-bit against a direct `label_program`, and its
//! hit/miss/eviction tally is checked on its own terms (a fresh cache
//! misses once per region, then hits once per region, and never evicts).
//! The runner deliberately uses *fresh* caches per check rather than the
//! process-global ones: generated (and shrunk) programs are one-shot, so
//! global entries could never be hit again and would accumulate for the
//! life of the process.
//!
//! The ladder itself is a
//! [`SweepPlan`](refidem_specsim::sweep::SweepPlan) built by
//! [`ladder_plan`] and executed with
//! [`SweepExec::sequential`] — one check stays on one thread because the
//! *batch* axis (many programs, see
//! [`run_suite`](crate::run_suite)) is where the worker pool shards; a
//! sequential inner ladder composes with a parallel outer batch without
//! oversubscribing the machine. [`check_program_with`] accepts another
//! executor for standalone single-program checks.

use crate::gen::{GeneratedProgram, ProgramSpec};
use refidem_analysis::classify::VarClass;
use refidem_core::label::{IdemCategory, Label, LabeledProgram, Labeling};
use refidem_ir::ids::{ProcId, RefId};
use refidem_ir::lowered::ExecBackend;
use refidem_ir::memory::{Addr, Layout, Memory};
use refidem_ir::program::Program;
use refidem_ir::sites::AccessKind;
use refidem_specsim::sweep::{ladder_plan, SweepExec};
use refidem_specsim::{
    ExecMode, FaultPlan, Governor, ProgramReport, SimConfig, SimError, SpecRuntime,
};

/// The speculative-storage capacities every program is exercised at —
/// capacity 1 forces overflow serialization on almost every program, 256
/// exceeds every generated working set.
pub const CAPACITY_LADDER: [usize; 5] = [1, 2, 4, 16, 256];

/// Label corruption applied before simulating (fault injection).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tamper {
    /// Promote every speculative read to idempotent (unsound: premature
    /// reads are no longer tracked, so flow violations go undetected).
    PromoteSpeculativeReads,
    /// Promote every speculative write to idempotent (unsound: the write
    /// reaches non-speculative storage before its turn and is not rolled
    /// back).
    PromoteSpeculativeWrites,
}

/// Applies a [`Tamper`] to a labeling. Returns how many labels changed.
pub fn tamper_labeling(labeling: &mut Labeling, tamper: Tamper) -> usize {
    let wanted = match tamper {
        Tamper::PromoteSpeculativeReads => AccessKind::Read,
        Tamper::PromoteSpeculativeWrites => AccessKind::Write,
    };
    let victims: Vec<RefId> = labeling
        .iter()
        .filter(|(id, l)| *l == Label::Speculative && labeling.access(*id) == Some(wanted))
        .map(|(id, _)| id)
        .collect();
    for id in &victims {
        labeling.override_label(*id, Label::Idempotent(IdemCategory::SharedDependent));
    }
    victims.len()
}

/// Configuration of one differential check.
#[derive(Clone, Debug)]
pub struct DiffConfig {
    /// Processor count of the simulated machine.
    pub processors: usize,
    /// Capacity ladder.
    pub capacities: Vec<usize>,
    /// Execution models to differentiate against the sequential truth.
    pub modes: Vec<ExecMode>,
    /// Optional label corruption (fault injection).
    pub tamper: Option<Tamper>,
    /// Execution backend the speculative simulations run on. The sequential
    /// ground truth always runs on the tree-walking oracle, so with the
    /// default (`Fused` — heat-selected superinstructions over plain
    /// bytecode) every check also differentially tests the compiled
    /// engine against the oracle; set `Lowered` to pin the plain tier.
    pub backend: ExecBackend,
    /// Runtime the speculative simulations execute on: the single-thread
    /// cycle simulator (default) or the real-thread runtime
    /// ([`SpecRuntime::Threads`]), where `processors` becomes the number
    /// of concurrent segment threads. The sequential ground truth always
    /// runs on the simulator, so a `Threads` check differentially tests
    /// real concurrency against the sequential semantics.
    pub runtime: SpecRuntime,
    /// Deterministic fault-injection schedule threaded into every
    /// speculative simulation (never into the sequential ground truth).
    /// A non-empty plan relaxes the clean-run invariants — injected
    /// misspeculation legitimately produces rollbacks without real
    /// violations — while byte-exactness still binds on every run that
    /// completes.
    pub faults: FaultPlan,
    /// Degradation budgets for the speculative simulations. Runs that
    /// exhaust a budget re-execute the region serially and count into
    /// [`DiffStats::degraded_regions`].
    pub governor: Governor,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            processors: 4,
            capacities: CAPACITY_LADDER.to_vec(),
            modes: vec![ExecMode::Hose, ExecMode::Case],
            tamper: None,
            backend: ExecBackend::default(),
            runtime: SpecRuntime::Simulated,
            faults: FaultPlan::default(),
            governor: Governor::default(),
        }
    }
}

impl DiffConfig {
    /// A configuration that only runs CASE (the model label corruption can
    /// affect — HOSE ignores labels entirely).
    pub fn case_only() -> Self {
        DiffConfig {
            modes: vec![ExecMode::Case],
            ..Default::default()
        }
    }
}

/// Why a differential check failed.
#[derive(Clone, Debug)]
pub enum DiffFailure {
    /// The region could not be analyzed or labeled.
    Analysis(String),
    /// The sequential ground-truth interpretation failed.
    Sequential(String),
    /// A simulation errored (deadlock, budget, execution error).
    Sim {
        /// Execution model of the failing run.
        mode: ExecMode,
        /// Capacity of the failing run.
        capacity: usize,
        /// Error rendering.
        error: String,
    },
    /// Final memory differs from the sequential image.
    Divergence {
        /// Execution model of the failing run.
        mode: ExecMode,
        /// Capacity of the failing run.
        capacity: usize,
        /// Differing `(address, sequential, simulated)` triples (first 8).
        diffs: Vec<(Addr, f64, f64)>,
        /// Total number of differing addresses.
        count: usize,
    },
    /// A structural invariant of the simulator was violated.
    Invariant {
        /// Execution model of the failing run.
        mode: ExecMode,
        /// Capacity of the failing run.
        capacity: usize,
        /// Label of the region whose report broke the invariant.
        region: String,
        /// What went wrong.
        what: String,
    },
}

impl std::fmt::Display for DiffFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffFailure::Analysis(e) => write!(f, "analysis failed: {e}"),
            DiffFailure::Sequential(e) => write!(f, "sequential run failed: {e}"),
            DiffFailure::Sim {
                mode,
                capacity,
                error,
            } => write!(f, "{mode} @ capacity {capacity} failed: {error}"),
            DiffFailure::Divergence {
                mode,
                capacity,
                diffs,
                count,
            } => write!(
                f,
                "{mode} @ capacity {capacity} diverged at {count} addresses (first: {diffs:?})"
            ),
            DiffFailure::Invariant {
                mode,
                capacity,
                region,
                what,
            } => write!(
                f,
                "{mode} @ capacity {capacity}, region `{region}` broke invariant: {what}"
            ),
        }
    }
}

/// Aggregate statistics of the runs a differential check performed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DiffStats {
    /// Whole-program simulations performed (ladder points × modes).
    pub runs: usize,
    /// Regions simulated, summed over runs (0 for serial-only programs).
    pub regions: usize,
    /// Segments executed, summed over runs and regions.
    pub segments: usize,
    /// Violations observed, summed over runs and regions.
    pub violations: u64,
    /// Rollbacks observed, summed over runs and regions.
    pub rollbacks: u64,
    /// Overflow stalls observed, summed over runs and regions.
    pub overflow_stalls: u64,
    /// Highest speculative-storage peak occupancy over all runs.
    pub max_peak_occupancy: usize,
    /// Highest per-segment restart count over all runs (livelock guard).
    pub max_segment_restarts: u32,
    /// Labels changed by tampering (0 when not tampering).
    pub tampered_labels: usize,
    /// Regions that exhausted a degradation budget and transparently fell
    /// back to sequential re-execution (still byte-exact), summed over
    /// runs.
    pub degraded_regions: usize,
    /// Ladder points that ended in an *injected* terminal failure (a
    /// scheduled worker panic or worker error) instead of a report — the
    /// structured-error path working as intended, not a defect.
    pub injected_failures: usize,
}

impl DiffStats {
    /// Merges another check's statistics into this one.
    pub fn merge(&mut self, other: &DiffStats) {
        self.runs += other.runs;
        self.regions += other.regions;
        self.segments += other.segments;
        self.violations += other.violations;
        self.rollbacks += other.rollbacks;
        self.overflow_stalls += other.overflow_stalls;
        self.max_peak_occupancy = self.max_peak_occupancy.max(other.max_peak_occupancy);
        self.max_segment_restarts = self.max_segment_restarts.max(other.max_segment_restarts);
        self.tampered_labels += other.tampered_labels;
        self.degraded_regions += other.degraded_regions;
        self.injected_failures += other.injected_failures;
    }
}

/// Byte-exact memory comparison, excluding the address ranges of variables
/// the region classifies as private. Returns differing triples.
fn byte_exact_diff(seq: &Memory, sim: &Memory, ignored: &[(u64, u64)]) -> Vec<(Addr, f64, f64)> {
    let mut out = Vec::new();
    for word in 0..seq.len() as u64 {
        let addr = Addr(word);
        if ignored.iter().any(|(lo, hi)| word >= *lo && word < *hi) {
            continue;
        }
        let a = seq.load(addr);
        let b = sim.load(addr);
        if a.to_bits() != b.to_bits() {
            out.push((addr, a, b));
        }
    }
    out
}

/// Runs the full whole-program differential check: every discovered
/// region of procedure 0 is simulated speculatively, the serial chunks
/// sequentially. The capacity-ladder sweep runs sequentially on the
/// calling thread (see the module docs for why); [`check_program_with`]
/// takes an explicit executor.
pub fn check_program(program: &Program, cfg: &DiffConfig) -> Result<DiffStats, DiffFailure> {
    check_program_with(program, cfg, &SweepExec::sequential())
}

/// [`check_program`] with the (capacity × mode) ladder executed on an
/// explicit [`SweepExec`]. The merge is ordered, so the returned stats —
/// and which failure is reported when several points fail — are identical
/// at any worker count.
pub fn check_program_with(
    program: &Program,
    cfg: &DiffConfig,
    exec: &SweepExec,
) -> Result<DiffStats, DiffFailure> {
    // Label through a fresh AnalysisCache, and differentially check the
    // cache itself: the cached labeling must be bit-identical to a direct
    // `label_program`, and the tally is checked on its own terms (a fresh
    // cache misses exactly once per region, then hits exactly once per
    // region — never evicting). Running this inside the differential
    // runner means every corpus program exercises the cached-vs-fresh
    // equivalence, irregular and WHILE fallbacks included.
    let analysis_cache = refidem_specsim::AnalysisCache::fresh();
    let (mut labeled, tally) = analysis_cache
        .label_program_cached(program, ProcId::from_index(0))
        .map_err(|e| DiffFailure::Analysis(format!("{e:?}")))?;
    let fresh: LabeledProgram = refidem_core::label::label_program(program, ProcId::from_index(0))
        .map_err(|e| DiffFailure::Analysis(format!("{e:?}")))?;
    let cache_check = |cond: bool, what: &str| {
        if cond {
            Ok(())
        } else {
            Err(DiffFailure::Analysis(format!("analysis cache: {what}")))
        }
    };
    cache_check(
        labeled.regions.len() == fresh.regions.len(),
        "cached and fresh labelings disagree on the region count",
    )?;
    for (c, f) in labeled.regions.iter().zip(&fresh.regions) {
        cache_check(
            c.labeling == f.labeling,
            &format!(
                "cached labeling of `{}` differs from fresh",
                c.analysis.spec.loop_label
            ),
        )?;
        cache_check(
            c.analysis.deps == f.analysis.deps,
            &format!(
                "cached dependences of `{}` differ from fresh",
                c.analysis.spec.loop_label
            ),
        )?;
        cache_check(
            c.analysis.fully_independent == f.analysis.fully_independent,
            "cached independence flag differs from fresh",
        )?;
    }
    let n = labeled.regions.len() as u64;
    cache_check(
        tally
            == refidem_specsim::AnalysisTally {
                hits: 0,
                misses: n,
                evictions: 0,
            },
        &format!("fresh-cache tally {tally:?}, expected {n} misses"),
    )?;
    let (_, again) = analysis_cache
        .label_program_cached(program, ProcId::from_index(0))
        .map_err(|e| DiffFailure::Analysis(format!("{e:?}")))?;
    cache_check(
        again
            == refidem_specsim::AnalysisTally {
                hits: n,
                misses: 0,
                evictions: 0,
            },
        &format!("re-label tally {again:?}, expected {n} hits"),
    )?;
    let mut stats = DiffStats::default();
    if let Some(tamper) = cfg.tamper {
        for region in &mut labeled.regions {
            stats.tampered_labels += tamper_labeling(&mut region.labeling, tamper);
        }
    }

    // Ground truth: one sequential interpretation of the whole program
    // (independent of capacity and mode — the SimConfig only affects
    // timing, not values). It always runs on the tree-walking oracle
    // backend, so the simulations (lowered by default) are differentially
    // checked against the oracle semantics. A fresh cache per check:
    // compile-once across the ladder below, but nothing outlives the
    // (one-shot, generated) program being checked.
    let base_cfg = SimConfig::default()
        .processors(cfg.processors)
        .backend(cfg.backend)
        .runtime(cfg.runtime)
        .faults(cfg.faults.clone())
        .governor(cfg.governor)
        .cache(refidem_ir::lowered::LoweredCache::fresh())
        .analysis_cache(analysis_cache);
    let seq_cfg = base_cfg.clone().oracle();
    let seq = refidem_specsim::run_program_sequential(program, &labeled, &seq_cfg)
        .map_err(|e| DiffFailure::Sequential(e.to_string()))?;

    // Private variables live in per-segment storage under CASE and are
    // dead at region exit: exclude their locations, as Lemma 2's statement
    // does. The exclusion is the union over every region — a variable that
    // later serial code or a later region reads is live-out of the earlier
    // region and therefore never classified private there, so the union
    // only ever hides locations that are dead when last touched
    // speculatively.
    let proc = &program.procedures[0];
    let layout = Layout::new(&proc.vars);
    let mut ignored: Vec<(u64, u64)> = Vec::new();
    for region in &labeled.regions {
        for (v, class) in region.analysis.classes.iter() {
            if class == VarClass::Private {
                let base = layout.base(v).0;
                ignored.push((base, base + proc.vars.kind(v).size() as u64));
            }
        }
    }

    // The (capacity × mode) ladder as a declarative sweep plan; every
    // point is an independent simulate-and-check job against the shared
    // sequential image. `run_fallible` short-circuits at the plan-order
    // first failing point — on the default sequential executor nothing
    // runs past a failure, which keeps the shrinker's failing-candidate
    // probes cheap.
    let plan = ladder_plan(&base_cfg, &cfg.capacities, &cfg.modes);
    let reports = plan.run_fallible(exec, |(sim_cfg, mode)| {
        check_point(
            program,
            &labeled,
            &seq.memory,
            &ignored,
            cfg,
            sim_cfg,
            *mode,
        )
    })?;
    for outcome in reports {
        stats.runs += 1;
        let r = match outcome {
            PointOutcome::Report(r) => r,
            PointOutcome::InjectedFailure => {
                stats.injected_failures += 1;
                continue;
            }
        };
        stats.regions += r.regions.len();
        for region in &r.regions {
            stats.segments += region.segments;
            stats.violations += region.violations;
            stats.rollbacks += region.rollbacks;
            stats.overflow_stalls += region.overflow_stalls;
            stats.max_peak_occupancy = stats.max_peak_occupancy.max(region.spec_peak_occupancy);
            stats.max_segment_restarts =
                stats.max_segment_restarts.max(region.max_segment_restarts);
            if region.degraded.is_some() {
                stats.degraded_regions += 1;
            }
        }
    }
    Ok(stats)
}

/// What one ladder point produced: a report to check and count, or a
/// terminal failure the fault plan *scheduled* (which the check accepts as
/// the structured-error path doing its job).
enum PointOutcome {
    Report(ProgramReport),
    InjectedFailure,
}

/// One ladder point: simulate the whole program under `(sim_cfg, mode)`,
/// compare the final memory byte-exactly against the sequential image and
/// check the structural invariants of every region's report. Returns the
/// program report on success.
fn check_point(
    program: &Program,
    labeled: &LabeledProgram,
    seq_memory: &Memory,
    ignored: &[(u64, u64)],
    cfg: &DiffConfig,
    sim_cfg: &SimConfig,
    mode: ExecMode,
) -> Result<PointOutcome, DiffFailure> {
    let capacity = sim_cfg.spec_capacity;
    let out = match refidem_specsim::simulate_program(program, labeled, mode, sim_cfg) {
        Ok(out) => out,
        // A terminal failure the fault plan scheduled is the expected
        // outcome of that schedule, not a defect — but only the exact
        // error kind the plan can produce is accepted; anything else
        // still fails the check.
        Err(SimError::WorkerPanic { .. }) if !cfg.faults.panic_segments.is_empty() => {
            return Ok(PointOutcome::InjectedFailure);
        }
        Err(SimError::Injected { .. }) if !cfg.faults.error_segments.is_empty() => {
            return Ok(PointOutcome::InjectedFailure);
        }
        Err(e) => {
            return Err(DiffFailure::Sim {
                mode,
                capacity,
                error: e.to_string(),
            });
        }
    };
    let diffs = byte_exact_diff(seq_memory, &out.memory, ignored);
    if !diffs.is_empty() {
        let count = diffs.len();
        return Err(DiffFailure::Divergence {
            mode,
            capacity,
            diffs: diffs.into_iter().take(8).collect(),
            count,
        });
    }
    // The whole-program cycle accounting must be internally consistent.
    let report = &out.report;
    if report.total_cycles != report.serial_cycles + report.parallel_cycles() {
        return Err(DiffFailure::Invariant {
            mode,
            capacity,
            region: "<program>".to_string(),
            what: format!(
                "total {} != serial {} + parallel {}",
                report.total_cycles,
                report.serial_cycles,
                report.parallel_cycles()
            ),
        });
    }
    for (labeled_region, r) in labeled.regions.iter().zip(&report.regions) {
        let region = labeled_region.analysis.spec.loop_label.clone();
        let invariant = |cond: bool, what: &str| {
            if cond {
                Ok(())
            } else {
                Err(DiffFailure::Invariant {
                    mode,
                    capacity,
                    region: region.clone(),
                    what: what.to_string(),
                })
            }
        };
        invariant(
            r.spec_peak_occupancy <= capacity,
            &format!(
                "peak occupancy {} exceeds capacity {capacity}",
                r.spec_peak_occupancy
            ),
        )?;
        invariant(
            r.commits as usize == r.segments,
            &format!("{} commits for {} segments", r.commits, r.segments),
        )?;
        // Livelock guard: every restart is paid for by a roll-back or an
        // overflow stall — a segment restarting more often than that
        // would spin without cause.
        invariant(
            (r.max_segment_restarts as u64) <= r.rollbacks + r.overflow_stalls,
            &format!(
                "{} restarts of one segment, but only {} rollbacks + {} overflow stalls",
                r.max_segment_restarts, r.rollbacks, r.overflow_stalls
            ),
        )?;
        if cfg.processors == 1 {
            // Injections never touch the head segment, and on one
            // processor every segment runs as the head — so this binds
            // even under a fault plan.
            invariant(r.violations == 0, "violation on one processor")?;
        }
        // A degraded region re-executed sequentially: its report carries
        // serial cycles and zero speculation statistics, so the
        // runtime-specific rules below (including the Threads zero-cycle
        // rule) do not apply. Injected misspeculation likewise produces
        // rollbacks without real violations, so the clean-run rules only
        // bind on an empty fault plan.
        let faulty = !cfg.faults.is_empty();
        match cfg.runtime {
            SpecRuntime::Simulated => {
                if !faulty && r.degraded.is_none() && r.violations == 0 {
                    invariant(
                        r.rollbacks == 0,
                        &format!("{} rollbacks without a violation", r.rollbacks),
                    )?;
                    if r.overflow_stalls == 0 {
                        invariant(
                            r.max_segment_restarts == 0,
                            &format!("{} restarts on a clean run", r.max_segment_restarts),
                        )?;
                    }
                }
            }
            SpecRuntime::Threads => {
                // Real time reports no simulated cycles (except for the
                // serial fallback, which is cycle-accounted).
                if r.degraded.is_none() {
                    invariant(
                        r.region_cycles == 0,
                        &format!(
                            "{} simulated cycles from the real-thread runtime",
                            r.region_cycles
                        ),
                    )?;
                }
                // Under real concurrency an overflow discard can cascade
                // roll-backs to younger readers without a violation ever
                // being flagged, so the clean-run rule only binds when
                // neither violations nor overflows occurred.
                if !faulty && r.degraded.is_none() && r.violations == 0 && r.overflow_stalls == 0 {
                    invariant(
                        r.rollbacks == 0,
                        &format!("{} rollbacks on a clean run", r.rollbacks),
                    )?;
                    invariant(
                        r.max_segment_restarts == 0,
                        &format!("{} restarts on a clean run", r.max_segment_restarts),
                    )?;
                }
            }
        }
    }
    Ok(PointOutcome::Report(out.report))
}

/// Differential check of a generated program.
pub fn check_generated(g: &GeneratedProgram, cfg: &DiffConfig) -> Result<DiffStats, DiffFailure> {
    check_program(&g.program, cfg)
}

/// [`check_generated`] with the ladder on an explicit executor.
pub fn check_generated_with(
    g: &GeneratedProgram,
    cfg: &DiffConfig,
    exec: &SweepExec,
) -> Result<DiffStats, DiffFailure> {
    check_program_with(&g.program, cfg, exec)
}

/// Differential check of a spec (builds it first). This is the predicate
/// the shrinker re-evaluates on every candidate.
pub fn check_spec(spec: &ProgramSpec, cfg: &DiffConfig) -> Result<DiffStats, DiffFailure> {
    check_program(&spec.build().program, cfg)
}

/// [`check_spec`] with the ladder on an explicit executor.
pub fn check_spec_with(
    spec: &ProgramSpec,
    cfg: &DiffConfig,
    exec: &SweepExec,
) -> Result<DiffStats, DiffFailure> {
    check_program_with(&spec.build().program, cfg, exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn untampered_generated_programs_pass() {
        for seed in 0..20 {
            let g = generate(seed);
            let stats = check_generated(&g, &DiffConfig::default())
                .unwrap_or_else(|f| panic!("seed {seed} failed the differential check: {f}"));
            assert_eq!(stats.runs, CAPACITY_LADDER.len() * 2);
            assert_eq!(stats.regions, g.regions.len() * stats.runs);
            if !g.regions.is_empty() {
                assert!(stats.segments > 0);
            }
            assert_eq!(stats.tampered_labels, 0);
        }
    }

    #[test]
    fn capacity_one_is_always_respected() {
        let cfg = DiffConfig {
            capacities: vec![1],
            ..Default::default()
        };
        for seed in 0..20 {
            let g = generate(seed);
            let stats = check_generated(&g, &cfg).unwrap_or_else(|f| panic!("seed {seed}: {f}"));
            assert!(stats.max_peak_occupancy <= 1);
        }
    }

    #[test]
    fn single_processor_differential_is_clean() {
        let cfg = DiffConfig {
            processors: 1,
            ..Default::default()
        };
        for seed in 0..10 {
            let g = generate(seed);
            let stats = check_generated(&g, &cfg).unwrap_or_else(|f| panic!("seed {seed}: {f}"));
            assert_eq!(stats.violations, 0);
            assert_eq!(stats.rollbacks, 0);
        }
    }
}
