//! Seeded, deterministic generation of whole multi-region programs.
//!
//! The generator works in two stages. A [`ProgramSpec`] is a small,
//! declarative description of a whole program: arrays and scalars, **zero
//! to three region loops** (labeled outer `DO` loops whose bodies mix
//! assignments, conditionals and possibly triangular inner loops with
//! affine subscripts) separated by **serial straight-line chunks**
//! (prologue, inter-region gaps, epilogue — plain assignments with
//! loop-invariant subscripts). [`ProgramSpec::build`] lowers a spec to a
//! `refidem-ir` [`Program`] — always the same program for the same spec —
//! and [`generate`] draws a spec from a seeded [`Rng`]. The program-level
//! shape feeds the whole-program differential runner: every scheduled
//! region is simulated speculatively, the serial chunks sequentially, and
//! the final memory must match the sequential oracle byte for byte.
//!
//! Splitting generation from lowering is what makes shrinking possible: the
//! shrinker edits the spec (drop a statement, zero a coefficient, shorten
//! the loop) and rebuilds, instead of trying to edit IR with its
//! interdependent reference ids.
//!
//! Lowering keeps every subscript in bounds by construction: it computes,
//! per array, the minimum and maximum value any of its subscripts can take
//! over the whole iteration space, shifts all subscripts of that array by a
//! common offset so the minimum lands on zero, and sizes the array to the
//! maximum. Shifting every use by the same amount preserves the dependence
//! structure exactly.

use crate::rng::Rng;
use refidem_ir::build::{ac, add, av, cmp, idx, mul, num, sub, ProcBuilder};
use refidem_ir::expr::{BinOp, CmpOp, Expr, Reference};
use refidem_ir::ids::VarId;
use refidem_ir::program::{Program, RegionSpec};
use refidem_ir::stmt::Stmt;

/// The label of generated region `i` (`R0`, `R1`, …).
pub fn region_label(i: usize) -> String {
    format!("R{i}")
}

/// An affine subscript `kc*k + jc*j + off` in the outer index `k` and (when
/// inside an inner loop) the inner index `j`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubSpec {
    /// Coefficient of the outer (region) loop index.
    pub kc: i64,
    /// Coefficient of the inner loop index (must be 0 outside inner loops).
    pub jc: i64,
    /// Constant offset.
    pub off: i64,
}

impl SubSpec {
    /// Subscript depending only on the outer index.
    pub fn outer(kc: i64, off: i64) -> Self {
        SubSpec { kc, jc: 0, off }
    }
}

/// The initialization pattern of one generated indirection array.
///
/// Every pattern fills `x(i)` for `i = 1 … n` with values guaranteed to lie
/// in `[1, n]` (so an indirect access `a(x(pos))` is in bounds whenever the
/// target array's extent covers `[1, n]` — [`ProgramSpec::layout_plan`]
/// enforces that). The permutation patterns (identity, reversal, cyclic
/// shift) exercise gather/scatter with distinct targets; the clamp patterns
/// produce *duplicate* indices, so an indirect store through them carries a
/// genuine cross-segment output dependence that only speculation handles.
/// Initialization happens in an unlabeled (serial) `DO` loop prepended to
/// the program, so the indirection arrays are read-only inside every
/// region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexPattern {
    /// `x(i) = i`.
    Identity,
    /// `x(i) = n + 1 - i`.
    Reversal,
    /// `x(i) = ((i - 1 + s) mod n) + 1`, lowered as a guarded pair of
    /// affine assignments. The stored shift is normalized into `[1, n-1]`.
    CyclicShift(i64),
    /// `x(i) = min(i, c)` — the tail collapses onto `c` (duplicates).
    ClampLow(i64),
    /// `x(i) = max(i, c)` — the head collapses onto `c` (duplicates).
    ClampHigh(i64),
}

/// Effective cyclic-shift amount over extent `n`, normalized into
/// `[1, n-1]` so the shifted value always wraps to a valid subscript.
pub(crate) fn cyclic_shift_amount(s: i64, n: i64) -> i64 {
    (s - 1).rem_euclid((n - 1).max(1)) + 1
}

/// Effective clamp bound over extent `n`.
pub(crate) fn clamp_bound(c: i64, n: i64) -> i64 {
    c.clamp(1, n)
}

/// Data-dependent early termination of a region loop (a bounded WHILE).
///
/// The region continues while `a_arr(sub) <= limit/2`; the counted `DO`
/// bounds still cap the trip count. Initial memory values lie in
/// `[0, 4.02]`, so limits in `[1, 7]` (thresholds `0.5 … 3.5`) produce trip
/// counts that genuinely depend on the data — including zero-trip and
/// full-trip runs — and that no static analysis can predict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WhileSpec {
    /// The watched value array.
    pub arr: usize,
    /// Subscript of the watched element (outer-index only, `jc == 0`).
    pub sub: SubSpec,
    /// Continuation threshold in halves: continue while `value <= limit/2`.
    pub limit: i64,
}

/// How one term combines with the accumulated right-hand side.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TermOp {
    /// Added.
    Add,
    /// Subtracted.
    Sub,
    /// Multiplied.
    Mul,
}

/// One operand of a generated right-hand side.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TermSpec {
    /// Load of `arrays[arr]` at an affine subscript.
    Arr {
        /// Array number.
        arr: usize,
        /// Subscript.
        sub: SubSpec,
    },
    /// Load of `arrays[arr]` through indirection array `idx`:
    /// `a_arr(x_idx(k - lo + 1))`. The subscript is runtime-resolved — no
    /// affine analysis applies, so the dependence analysis must fall back
    /// to its conservative answer.
    ArrInd {
        /// Value array loaded through the indirection.
        arr: usize,
        /// Indirection array number (into [`ProgramSpec::index_arrays`]).
        idx: usize,
    },
    /// Load of scalar number `n`.
    Scalar(usize),
    /// The outer loop index as a value.
    OuterIdx,
    /// The inner loop index as a value (only inside inner loops).
    InnerIdx,
    /// A small integer constant.
    Const(i64),
}

/// Where an assignment stores its result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TargetSpec {
    /// Store into `arrays[arr]` at an affine subscript.
    Arr {
        /// Array number.
        arr: usize,
        /// Subscript.
        sub: SubSpec,
    },
    /// Store into `arrays[arr]` through indirection array `idx`:
    /// `a_arr(x_idx(k - lo + 1)) = …`. A scatter — with a duplicate-laden
    /// pattern ([`IndexPattern::ClampLow`]/[`ClampHigh`](IndexPattern::ClampHigh))
    /// this is a genuine cross-segment output dependence.
    ArrInd {
        /// Value array stored through the indirection.
        arr: usize,
        /// Indirection array number (into [`ProgramSpec::index_arrays`]).
        idx: usize,
    },
    /// Store into scalar number `n`.
    Scalar(usize),
}

/// One assignment: `target = t0 (op1) t1 (op2) t2 …`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AssignSpec {
    /// Store target.
    pub target: TargetSpec,
    /// Operand terms with their combining operators (the first operator is
    /// ignored).
    pub terms: Vec<(TermOp, TermSpec)>,
}

/// The value compared against a loop index in a conditional.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CondIndex {
    /// Compare the outer index.
    Outer,
    /// Compare the inner index (only inside inner loops).
    Inner,
}

/// A branch condition `index <op> rhs`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CondSpec {
    /// Which loop index is compared.
    pub index: CondIndex,
    /// `>` or `<=`.
    pub greater: bool,
    /// Comparison constant.
    pub rhs: i64,
}

/// The upper bound of an inner loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InnerBound {
    /// Constant trip region: `do j = lo, lo+extent-1`.
    Extent(i64),
    /// Triangular: `do j = lo, k` (the outer index).
    Triangular,
}

/// One statement of the generated loop body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StmtSpec {
    /// An assignment.
    Assign(AssignSpec),
    /// `IF (cond) THEN … ELSE … ENDIF` (else branch may be empty).
    If {
        /// Branch condition.
        cond: CondSpec,
        /// Taken branch.
        then_body: Vec<StmtSpec>,
        /// Fallthrough branch.
        else_body: Vec<StmtSpec>,
    },
    /// An inner `DO j` loop. Inner loops never nest further.
    Inner {
        /// Lower bound of the inner index.
        lo: i64,
        /// Upper bound form.
        bound: InnerBound,
        /// Loop body (assignments and conditionals only).
        body: Vec<StmtSpec>,
    },
}

/// One region loop of a generated program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionPart {
    /// Lower bound of the region loop index.
    pub outer_lo: i64,
    /// Trip count of the region loop (≥ 1).
    pub outer_trips: i64,
    /// Data-dependent early termination (bounded WHILE); `None` for a
    /// plain counted `DO` region.
    pub while_shape: Option<WhileSpec>,
    /// Region loop body.
    pub body: Vec<StmtSpec>,
}

impl RegionPart {
    /// Upper bound of the region loop index.
    pub fn outer_hi(&self) -> i64 {
        self.outer_lo + self.outer_trips - 1
    }
}

/// A complete generated program shape: serial chunks alternating with
/// region loops.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgramSpec {
    /// Number of arrays (`a0`, `a1`, …).
    pub arrays: usize,
    /// Number of scalars (`s0`, `s1`, …).
    pub scalars: usize,
    /// Serial straight-line chunks: `serial[i]` precedes region `i` and
    /// `serial[regions.len()]` is the epilogue — always
    /// `regions.len() + 1` chunks, possibly empty. Serial statements are
    /// plain assignments whose subscripts are loop-invariant (`kc == 0`,
    /// `jc == 0`) and whose terms never mention a loop index.
    pub serial: Vec<Vec<StmtSpec>>,
    /// The region loops, in program order (0–3 of them).
    pub regions: Vec<RegionPart>,
    /// Indirection arrays (`x0`, `x1`, …), each with its initialization
    /// pattern. All share the extent [`ProgramSpec::idx_extent`] and are
    /// filled by unlabeled (serial) `DO` loops prepended to the program,
    /// so they are read-only inside every region.
    pub index_arrays: Vec<IndexPattern>,
    /// Arrays in the live-out set.
    pub live_out_arrays: Vec<usize>,
    /// Scalars in the live-out set.
    pub live_out_scalars: Vec<usize>,
}

fn count_stmts(stmts: &[StmtSpec]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            StmtSpec::Assign(_) => 1,
            StmtSpec::If {
                then_body,
                else_body,
                ..
            } => 1 + count_stmts(then_body) + count_stmts(else_body),
            StmtSpec::Inner { body, .. } => 1 + count_stmts(body),
        })
        .sum()
}

impl ProgramSpec {
    /// Total number of statements, counting nested ones, over every
    /// serial chunk and region body.
    pub fn stmt_count(&self) -> usize {
        self.serial.iter().map(|c| count_stmts(c)).sum::<usize>()
            + self
                .regions
                .iter()
                .map(|r| count_stmts(&r.body))
                .sum::<usize>()
    }

    /// Common extent of every indirection array: at least 16 (so the
    /// duplicate/permutation patterns have room to differ) and at least
    /// the largest region trip count (so the normalized position
    /// `k - lo + 1` is always a valid subscript into the array).
    pub fn idx_extent(&self) -> i64 {
        self.regions
            .iter()
            .map(|r| r.outer_trips)
            .max()
            .unwrap_or(0)
            .max(16)
    }

    /// True when any region reference goes through an indirection array.
    pub fn has_irregular(&self) -> bool {
        let mut found = false;
        self.for_each_indirect(&mut |_| found = true);
        found
    }

    /// True when any region is a bounded WHILE.
    pub fn has_while(&self) -> bool {
        self.regions.iter().any(|r| r.while_shape.is_some())
    }

    /// Per-array subscript shift and extent making every access in-bounds:
    /// shifting all of an array's subscripts by the same amount preserves
    /// the dependence structure while pinning the minimum subscript to 1 —
    /// the smallest valid Fortran subscript. Pinning to 0 would be fatal:
    /// the layout *clamps* out-of-range subscripts, so 0 and 1 would alias
    /// the same element behind the dependence analysis's back and the
    /// differential oracle would report phantom divergences. The bounds
    /// are taken over every region's iteration space and every serial
    /// chunk. The reproducer emitter uses the same plan, so emitted code
    /// builds the identical program.
    pub fn layout_plan(&self) -> (Vec<i64>, Vec<usize>) {
        let mut bounds: Vec<Option<(i64, i64)>> = vec![None; self.arrays];
        self.for_each_sub(&mut |arr, sub, k_range, j_range| {
            let (lo, hi) = sub_range(sub, k_range, j_range);
            let slot = &mut bounds[arr];
            *slot = Some(match *slot {
                None => (lo, hi),
                Some((l, h)) => (l.min(lo), h.max(hi)),
            });
        });
        // Indirect accesses address the *unshifted* value of the
        // indirection array, which is always in [1, idx_extent]: widen the
        // target array's bounds to cover that whole range. (The shift then
        // stays non-negative because the merged minimum is at most 1, so
        // shifted affine subscripts and raw indirect values both land
        // inside the extent.)
        let idx_n = self.idx_extent();
        self.for_each_indirect(&mut |arr| {
            let slot = &mut bounds[arr];
            *slot = Some(match *slot {
                None => (1, idx_n),
                Some((l, h)) => (l.min(1), h.max(idx_n)),
            });
        });
        let shifts: Vec<i64> = bounds
            .iter()
            .map(|b| b.map(|(lo, _)| 1 - lo).unwrap_or(0))
            .collect();
        let extents: Vec<usize> = bounds
            .iter()
            .map(|b| b.map(|(lo, hi)| (hi - lo + 1) as usize).unwrap_or(1))
            .collect();
        (shifts, extents)
    }

    /// Lowers the spec to an executable, analyzable program: serial chunks
    /// alternating with labeled region loops (`R0`, `R1`, …).
    /// Deterministic: equal specs build equal programs.
    pub fn build(&self) -> GeneratedBuild {
        assert_eq!(
            self.serial.len(),
            self.regions.len() + 1,
            "one serial chunk around every region"
        );
        let (shifts, extents) = self.layout_plan();
        let idx_n = self.idx_extent();
        let mut b = ProcBuilder::new("generated");
        let arrays: Vec<VarId> = extents
            .iter()
            .enumerate()
            .map(|(i, e)| b.array(&format!("a{i}"), &[*e]))
            .collect();
        let scalars: Vec<VarId> = (0..self.scalars)
            .map(|i| b.scalar(&format!("s{i}")))
            .collect();
        let idx_arrays: Vec<VarId> = (0..self.index_arrays.len())
            .map(|i| b.array(&format!("x{i}"), &[idx_n as usize]))
            .collect();
        let k = b.index("k");
        let j = b.index("j");
        let live: Vec<VarId> = self
            .live_out_arrays
            .iter()
            .map(|i| arrays[*i])
            .chain(self.live_out_scalars.iter().map(|i| scalars[*i]))
            .collect();
        b.live_out(&live);

        let ctx = Lowering {
            arrays: &arrays,
            scalars: &scalars,
            idx_arrays: &idx_arrays,
            shifts: &shifts,
            k,
            j,
        };
        let mut body = Vec::new();
        // Indirection arrays are filled first, by unlabeled (hence serial)
        // loops — regions only ever read them.
        for (i, pat) in self.index_arrays.iter().enumerate() {
            body.push(init_index_loop(&mut b, idx_arrays[i], k, idx_n, pat));
        }
        for (i, region) in self.regions.iter().enumerate() {
            for st in &self.serial[i] {
                assert_serial(st);
            }
            body.extend(ctx.lower_stmts(&mut b, &self.serial[i], 0));
            // Normalize the outer index to a 1-based position for
            // indirection-array subscripts: `k - lo + 1` spans
            // `[1, trips]` ⊆ `[1, idx_extent]`.
            let k_shift = 1 - region.outer_lo;
            let region_body = ctx.lower_stmts(&mut b, &region.body, k_shift);
            body.push(match &region.while_shape {
                None => b.do_loop_labeled(
                    &region_label(i),
                    k,
                    ac(region.outer_lo),
                    ac(region.outer_hi()),
                    region_body,
                ),
                Some(ws) => {
                    let watched = ctx.affine(ws.arr, ws.sub);
                    let load = b.load_elem(arrays[ws.arr], vec![watched]);
                    let cond = cmp(CmpOp::Le, load, num(ws.limit as f64 * 0.5));
                    b.while_loop_labeled(
                        &region_label(i),
                        k,
                        ac(region.outer_lo),
                        ac(region.outer_hi()),
                        cond,
                        region_body,
                    )
                }
            });
        }
        let epilogue = self.serial.last().expect("epilogue chunk");
        for st in epilogue {
            assert_serial(st);
        }
        body.extend(ctx.lower_stmts(&mut b, epilogue, 0));
        let mut program = Program::new("generated");
        program.add_procedure(b.build(body));
        let regions = (0..self.regions.len())
            .map(|i| {
                program
                    .find_region(&region_label(i))
                    .expect("region exists")
            })
            .collect();
        GeneratedBuild { program, regions }
    }

    /// Visits every array subscript together with the outer-index range of
    /// its enclosing region (`(0, 0)` inside serial chunks, whose
    /// subscripts are loop-invariant) and the inner-index range applicable
    /// at its position (`None` outside inner loops).
    fn for_each_sub(&self, f: &mut impl FnMut(usize, SubSpec, (i64, i64), Option<(i64, i64)>)) {
        fn walk(
            stmts: &[StmtSpec],
            k_range: (i64, i64),
            j_range: Option<(i64, i64)>,
            f: &mut impl FnMut(usize, SubSpec, (i64, i64), Option<(i64, i64)>),
        ) {
            for s in stmts {
                match s {
                    StmtSpec::Assign(a) => {
                        if let TargetSpec::Arr { arr, sub } = &a.target {
                            f(*arr, *sub, k_range, j_range);
                        }
                        for (_, t) in &a.terms {
                            if let TermSpec::Arr { arr, sub } = t {
                                f(*arr, *sub, k_range, j_range);
                            }
                        }
                    }
                    StmtSpec::If {
                        then_body,
                        else_body,
                        ..
                    } => {
                        walk(then_body, k_range, j_range, f);
                        walk(else_body, k_range, j_range, f);
                    }
                    StmtSpec::Inner { lo, bound, body } => {
                        let hi = match bound {
                            InnerBound::Extent(e) => lo + e - 1,
                            // `do j = lo, k`: j never exceeds the outer
                            // upper bound (empty when k < lo).
                            InnerBound::Triangular => k_range.1.max(*lo),
                        };
                        walk(body, k_range, Some((*lo, hi)), f);
                    }
                }
            }
        }
        for chunk in &self.serial {
            walk(chunk, (0, 0), None, f);
        }
        for region in &self.regions {
            let k_range = (region.outer_lo, region.outer_hi());
            if let Some(ws) = &region.while_shape {
                f(ws.arr, ws.sub, k_range, None);
            }
            walk(&region.body, k_range, None, f);
        }
    }

    /// Visits the value-array number of every reference that goes through
    /// an indirection array (loads and stores alike).
    fn for_each_indirect(&self, f: &mut impl FnMut(usize)) {
        fn walk(stmts: &[StmtSpec], f: &mut impl FnMut(usize)) {
            for s in stmts {
                match s {
                    StmtSpec::Assign(a) => {
                        if let TargetSpec::ArrInd { arr, .. } = &a.target {
                            f(*arr);
                        }
                        for (_, t) in &a.terms {
                            if let TermSpec::ArrInd { arr, .. } = t {
                                f(*arr);
                            }
                        }
                    }
                    StmtSpec::If {
                        then_body,
                        else_body,
                        ..
                    } => {
                        walk(then_body, f);
                        walk(else_body, f);
                    }
                    StmtSpec::Inner { body, .. } => walk(body, f),
                }
            }
        }
        for chunk in &self.serial {
            walk(chunk, f);
        }
        for region in &self.regions {
            walk(&region.body, f);
        }
    }
}

/// A built program together with the [`RegionSpec`]s of its region loops,
/// in schedule order.
#[derive(Clone, Debug)]
pub struct GeneratedBuild {
    /// The lowered program.
    pub program: Program,
    /// One designation per region loop (`R0`, `R1`, …).
    pub regions: Vec<RegionSpec>,
}

/// Serial chunks hold plain, loop-invariant assignments only — no loop
/// indices exist outside the regions.
fn assert_serial(s: &StmtSpec) {
    match s {
        StmtSpec::Assign(a) => {
            match &a.target {
                TargetSpec::Arr { sub, .. } => {
                    assert!(sub.kc == 0 && sub.jc == 0, "serial subscripts are constant")
                }
                TargetSpec::ArrInd { .. } => {
                    panic!("serial code cannot use indirection (it needs the loop index)")
                }
                TargetSpec::Scalar(_) => {}
            }
            for (_, t) in &a.terms {
                match t {
                    TermSpec::Arr { sub, .. } => {
                        assert!(sub.kc == 0 && sub.jc == 0, "serial subscripts are constant")
                    }
                    TermSpec::ArrInd { .. } => {
                        panic!("serial code cannot use indirection (it needs the loop index)")
                    }
                    TermSpec::OuterIdx | TermSpec::InnerIdx => {
                        panic!("serial code cannot reference a loop index")
                    }
                    TermSpec::Scalar(_) | TermSpec::Const(_) => {}
                }
            }
        }
        _ => panic!("serial chunks hold assignments only"),
    }
}

/// The unlabeled `DO k = 1, n` loop filling indirection array `x` with its
/// pattern. Every pattern stores exact small integers in `[1, n]`, so the
/// later float-to-subscript conversion of the indirect access is exact.
fn init_index_loop(b: &mut ProcBuilder, x: VarId, k: VarId, n: i64, pat: &IndexPattern) -> Stmt {
    let body = match pat {
        IndexPattern::Identity => vec![b.assign_elem(x, vec![av(k)], idx(k))],
        IndexPattern::Reversal => {
            vec![b.assign_elem(x, vec![av(k)], sub(num((n + 1) as f64), idx(k)))]
        }
        IndexPattern::CyclicShift(s) => {
            let s = cyclic_shift_amount(*s, n);
            let stay = b.assign_elem(x, vec![av(k)], add(idx(k), num(s as f64)));
            let wrap = b.assign_elem(x, vec![av(k)], add(idx(k), num((s - n) as f64)));
            vec![b.if_then_else(
                cmp(CmpOp::Le, idx(k), num((n - s) as f64)),
                vec![stay],
                vec![wrap],
            )]
        }
        IndexPattern::ClampLow(c) => {
            let c = clamp_bound(*c, n);
            vec![b.assign_elem(x, vec![av(k)], Expr::bin(BinOp::Min, idx(k), num(c as f64)))]
        }
        IndexPattern::ClampHigh(c) => {
            let c = clamp_bound(*c, n);
            vec![b.assign_elem(x, vec![av(k)], Expr::bin(BinOp::Max, idx(k), num(c as f64)))]
        }
    };
    b.do_loop(k, ac(1), ac(n), body)
}

/// Interval of `kc*k + jc*j + off` over box-shaped index ranges.
fn sub_range(sub: SubSpec, k_range: (i64, i64), j_range: Option<(i64, i64)>) -> (i64, i64) {
    let term = |c: i64, (lo, hi): (i64, i64)| {
        if c >= 0 {
            (c * lo, c * hi)
        } else {
            (c * hi, c * lo)
        }
    };
    let (klo, khi) = term(sub.kc, k_range);
    let (jlo, jhi) = match j_range {
        Some(r) => term(sub.jc, r),
        None => (0, 0),
    };
    (klo + jlo + sub.off, khi + jhi + sub.off)
}

/// Shared lowering context: declared variables and per-array subscript
/// shifts.
struct Lowering<'a> {
    arrays: &'a [VarId],
    scalars: &'a [VarId],
    idx_arrays: &'a [VarId],
    shifts: &'a [i64],
    k: VarId,
    j: VarId,
}

impl Lowering<'_> {
    fn affine(&self, arr: usize, s: SubSpec) -> refidem_ir::affine::AffineExpr {
        let mut e = ac(s.off + self.shifts[arr]);
        if s.kc != 0 {
            e = e + refidem_ir::affine::AffineExpr::scaled_var(self.k, s.kc);
        }
        if s.jc != 0 {
            e = e + refidem_ir::affine::AffineExpr::scaled_var(self.j, s.jc);
        }
        e
    }

    /// The indirect reference `a_arr(x_idx(k + k_shift))`. The indirection
    /// array's own subscript is affine (the normalized position); the outer
    /// subscript is the loaded value, never shifted — `layout_plan` sizes
    /// the target array to cover the raw value range instead.
    fn indirect_ref(
        &self,
        b: &mut ProcBuilder,
        arr: usize,
        idxa: usize,
        k_shift: i64,
    ) -> Reference {
        let pos = av(self.k) + ac(k_shift);
        let xref = b.aref(self.idx_arrays[idxa], vec![pos]);
        let s = b.indirect(xref);
        b.aref_subs(self.arrays[arr], vec![s])
    }

    fn term(&self, b: &mut ProcBuilder, t: &TermSpec, k_shift: i64) -> Expr {
        match t {
            TermSpec::Arr { arr, sub: s } => {
                let a = self.affine(*arr, *s);
                b.load_elem(self.arrays[*arr], vec![a])
            }
            TermSpec::ArrInd { arr, idx } => {
                let r = self.indirect_ref(b, *arr, *idx, k_shift);
                b.load_ref(r)
            }
            TermSpec::Scalar(n) => b.load(self.scalars[*n]),
            TermSpec::OuterIdx => idx(self.k),
            TermSpec::InnerIdx => idx(self.j),
            TermSpec::Const(c) => num(*c as f64 * 0.5),
        }
    }

    fn rhs(&self, b: &mut ProcBuilder, terms: &[(TermOp, TermSpec)], k_shift: i64) -> Expr {
        let mut acc: Option<Expr> = None;
        for (op, t) in terms {
            let e = self.term(b, t, k_shift);
            acc = Some(match acc {
                None => e,
                Some(prev) => match op {
                    TermOp::Add => add(prev, e),
                    TermOp::Sub => sub(prev, e),
                    TermOp::Mul => mul(prev, e),
                },
            });
        }
        acc.expect("assignments have at least one term")
    }

    fn lower_stmts(&self, b: &mut ProcBuilder, stmts: &[StmtSpec], k_shift: i64) -> Vec<Stmt> {
        let mut out = Vec::new();
        for s in stmts {
            match s {
                StmtSpec::Assign(a) => {
                    let rhs = self.rhs(b, &a.terms, k_shift);
                    let stmt = match &a.target {
                        TargetSpec::Arr { arr, sub: s } => {
                            let sub = self.affine(*arr, *s);
                            b.assign_elem(self.arrays[*arr], vec![sub], rhs)
                        }
                        TargetSpec::ArrInd { arr, idx } => {
                            let lhs = self.indirect_ref(b, *arr, *idx, k_shift);
                            b.assign(lhs, rhs)
                        }
                        TargetSpec::Scalar(n) => b.assign_scalar(self.scalars[*n], rhs),
                    };
                    out.push(stmt);
                }
                StmtSpec::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let lhs = match cond.index {
                        CondIndex::Outer => idx(self.k),
                        CondIndex::Inner => idx(self.j),
                    };
                    let op = if cond.greater { CmpOp::Gt } else { CmpOp::Le };
                    let c = cmp(op, lhs, num(cond.rhs as f64));
                    let then_s = self.lower_stmts(b, then_body, k_shift);
                    let else_s = self.lower_stmts(b, else_body, k_shift);
                    out.push(if else_s.is_empty() {
                        b.if_then(c, then_s)
                    } else {
                        b.if_then_else(c, then_s, else_s)
                    });
                }
                StmtSpec::Inner { lo, bound, body } => {
                    let upper = match bound {
                        InnerBound::Extent(e) => ac(lo + e - 1),
                        InnerBound::Triangular => av(self.k),
                    };
                    let inner_body = self.lower_stmts(b, body, k_shift);
                    out.push(b.do_loop(self.j, ac(*lo), upper, inner_body));
                }
            }
        }
        out
    }
}

/// Tuning knobs of the generator. The defaults produce small, quickly
/// simulated programs with a rich mix of shapes.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Maximum number of arrays (at least 1 is always declared).
    pub max_arrays: usize,
    /// Maximum number of scalars.
    pub max_scalars: usize,
    /// Minimum region trip count.
    pub min_trips: i64,
    /// Maximum region trip count.
    pub max_trips: i64,
    /// Maximum top-level statements in the region body.
    pub max_stmts: usize,
    /// Probability (out of 100) that a subscript inside an inner loop
    /// couples both indices (`kc` and `jc` nonzero).
    pub coupling_pct: u32,
    /// Maximum number of region loops (0 up to this many are drawn, biased
    /// toward 1–2; at least every fifteenth program is serial-only).
    pub max_regions: usize,
    /// Maximum straight-line statements per serial chunk (prologue, gaps,
    /// epilogue).
    pub max_serial_stmts: usize,
    /// Probability (out of 100) that a program with regions declares
    /// indirection arrays. Once declared, each region assignment picks an
    /// indirect target or term with a fixed 3-in-10 chance, so such a
    /// program almost always contains at least one irregular reference.
    pub irregular_pct: u32,
    /// Probability (out of 100) that a region is a bounded WHILE with a
    /// data-dependent trip count.
    pub while_pct: u32,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_arrays: 3,
            max_scalars: 2,
            min_trips: 4,
            max_trips: 12,
            max_stmts: 4,
            coupling_pct: 50,
            max_regions: 3,
            max_serial_stmts: 2,
            irregular_pct: 45,
            while_pct: 15,
        }
    }
}

/// A generated program, keeping the spec and seed for shrinking and
/// reporting.
#[derive(Clone, Debug)]
pub struct GeneratedProgram {
    /// The seed the spec was drawn from.
    pub seed: u64,
    /// The declarative shape.
    pub spec: ProgramSpec,
    /// The lowered program.
    pub program: Program,
    /// The region designations (the labeled outer loops, in schedule
    /// order — possibly none for a serial-only program).
    pub regions: Vec<RegionSpec>,
}

/// Draws a program from a seed with the given tuning. Equal seeds and
/// configs produce byte-identical programs.
pub fn generate_with(seed: u64, cfg: &GenConfig) -> GeneratedProgram {
    let mut rng = Rng::new(seed);
    let spec = gen_spec(&mut rng, cfg);
    let built = spec.build();
    GeneratedProgram {
        seed,
        spec,
        program: built.program,
        regions: built.regions,
    }
}

/// Draws a program from a seed with default tuning.
pub fn generate(seed: u64) -> GeneratedProgram {
    generate_with(seed, &GenConfig::default())
}

/// Label of the region [`giant_block`] builds.
pub const GIANT_BLOCK_LABEL: &str = "GIANT";

/// Builds a seed-pinned synthetic *giant block*: one region loop whose
/// body is `stmts` straight-line statements chaining four accumulator
/// scalars through reads of a wide coefficient array, closed by an array
/// store that keeps the chain live-out — the FPPPP `TWLDRV_DO100` shape,
/// sized on demand. The seed only varies which scalars each statement
/// reads and writes (the dependence tangle), never the site count, so the
/// block is a stable unit for benchmarking the pairwise dependence-test
/// pruning on bodies big enough to cross
/// [`SHARD_SITE_THRESHOLD`](refidem_analysis::depend::SHARD_SITE_THRESHOLD).
/// Equal `(seed, stmts)` produce byte-identical programs.
pub fn giant_block(seed: u64, stmts: usize) -> (Program, RegionSpec) {
    let mut rng = Rng::new(seed);
    let mut b = ProcBuilder::new("giant");
    let stmts = stmts.max(1);
    let e = b.array("e", &[stmts, 8]);
    let g = b.array("g", &[8]);
    let scalars: Vec<VarId> = (0..4).map(|i| b.scalar(&format!("s{i}"))).collect();
    let k = b.index("k");
    b.live_out(&[g]);
    let mut body = Vec::with_capacity(stmts + 1);
    for u in 0..stmts {
        let dst = scalars[rng.below(scalars.len())];
        let src = scalars[rng.below(scalars.len())];
        let term = b.load_elem(e, vec![ac(u as i64), av(k)]);
        let prev = b.load(src);
        body.push(b.assign_scalar(dst, add(prev, term)));
    }
    let s0 = b.load(scalars[0]);
    let s1 = b.load(scalars[1]);
    body.push(b.assign_elem(g, vec![av(k)], add(s0, s1)));
    let region = b.do_loop_labeled(GIANT_BLOCK_LABEL, k, ac(1), ac(8), body);
    let mut program = Program::new("giant_block");
    program.add_procedure(b.build(vec![region]));
    let spec = program
        .find_region(GIANT_BLOCK_LABEL)
        .expect("giant block region");
    (program, spec)
}

fn gen_spec(rng: &mut Rng, cfg: &GenConfig) -> ProgramSpec {
    let arrays = 1 + rng.below(cfg.max_arrays);
    let scalars = rng.below(cfg.max_scalars + 1);
    // Region count, biased toward one or two regions but keeping both the
    // serial-only shape (coverage 0) and the maximum in play.
    let n_regions = match rng.below(15) {
        0 => 0,
        1..=7 => 1.min(cfg.max_regions),
        8..=12 => 2.min(cfg.max_regions),
        _ => cfg.max_regions,
    };
    // Indirection arrays: only meaningful when there is a region to use
    // them from (serial code cannot — it has no loop index).
    let index_arrays: Vec<IndexPattern> = if n_regions > 0 && rng.chance(cfg.irregular_pct, 100) {
        (0..1 + rng.below(2))
            .map(|_| gen_index_pattern(rng))
            .collect()
    } else {
        vec![]
    };
    let n_idx = index_arrays.len();
    let mut regions = Vec::with_capacity(n_regions);
    for _ in 0..n_regions {
        let outer_lo = rng.range(-2, 3);
        let outer_trips = rng.range(cfg.min_trips, cfg.max_trips);
        let while_shape = if rng.chance(cfg.while_pct, 100) {
            Some(WhileSpec {
                arr: rng.below(arrays),
                sub: SubSpec::outer(1, rng.range(-2, 2)),
                limit: rng.range(1, 7),
            })
        } else {
            None
        };
        let n_stmts = 1 + rng.below(cfg.max_stmts);
        let mut body = Vec::new();
        for _ in 0..n_stmts {
            body.push(gen_stmt(
                rng,
                cfg,
                arrays,
                scalars,
                n_idx,
                outer_lo,
                outer_trips,
                0,
            ));
        }
        regions.push(RegionPart {
            outer_lo,
            outer_trips,
            while_shape,
            body,
        });
    }
    // Serial chunks: straight-line, loop-invariant assignments around the
    // regions. A serial-only program gets a guaranteed non-empty body.
    let mut serial = Vec::with_capacity(n_regions + 1);
    for i in 0..=n_regions {
        let min = usize::from(n_regions == 0 && i == 0);
        let n = min.max(rng.below(cfg.max_serial_stmts + 1));
        serial.push(
            (0..n)
                .map(|_| gen_serial_assign(rng, arrays, scalars))
                .collect(),
        );
    }
    // Live-out: a non-empty subset, biased toward including everything (a
    // richer live-out set defeats more dead-write special cases).
    let mut live_out_arrays: Vec<usize> = (0..arrays).filter(|_| rng.chance(3, 4)).collect();
    if live_out_arrays.is_empty() {
        live_out_arrays.push(rng.below(arrays));
    }
    let live_out_scalars: Vec<usize> = (0..scalars).filter(|_| rng.chance(1, 2)).collect();
    ProgramSpec {
        arrays,
        scalars,
        serial,
        regions,
        index_arrays,
        live_out_arrays,
        live_out_scalars,
    }
}

/// Draws an indirection-array pattern, biased away from the identity (which
/// is irregular only in form) toward genuine permutations and duplicates.
fn gen_index_pattern(rng: &mut Rng) -> IndexPattern {
    match rng.below(8) {
        0 => IndexPattern::Identity,
        1..=2 => IndexPattern::Reversal,
        3..=4 => IndexPattern::CyclicShift(rng.range(1, 8)),
        5..=6 => IndexPattern::ClampLow(rng.range(2, 10)),
        _ => IndexPattern::ClampHigh(rng.range(2, 10)),
    }
}

/// One serial straight-line assignment: loop-invariant subscripts, no
/// index terms.
fn gen_serial_assign(rng: &mut Rng, arrays: usize, scalars: usize) -> StmtSpec {
    let const_sub = |rng: &mut Rng| SubSpec {
        kc: 0,
        jc: 0,
        off: rng.range(-3, 3),
    };
    let target = if scalars > 0 && rng.chance(1, 3) {
        TargetSpec::Scalar(rng.below(scalars))
    } else {
        TargetSpec::Arr {
            arr: rng.below(arrays),
            sub: const_sub(rng),
        }
    };
    let n_terms = 1 + rng.below(2);
    let mut terms = Vec::new();
    for _ in 0..n_terms {
        let t = match rng.below(6) {
            0..=2 => TermSpec::Arr {
                arr: rng.below(arrays),
                sub: const_sub(rng),
            },
            3..=4 if scalars > 0 => TermSpec::Scalar(rng.below(scalars)),
            _ => TermSpec::Const(rng.range(-3, 3)),
        };
        let op = match t {
            TermSpec::Const(_) => *rng.pick(&[TermOp::Add, TermOp::Sub, TermOp::Mul]),
            _ => *rng.pick(&[TermOp::Add, TermOp::Add, TermOp::Sub]),
        };
        terms.push((op, t));
    }
    StmtSpec::Assign(AssignSpec { target, terms })
}

#[allow(clippy::too_many_arguments)]
fn gen_stmt(
    rng: &mut Rng,
    cfg: &GenConfig,
    arrays: usize,
    scalars: usize,
    n_idx: usize,
    outer_lo: i64,
    outer_trips: i64,
    depth: usize,
) -> StmtSpec {
    // Conditionals and inner loops appear only at the top level of the
    // region body (depth 0 keeps the shape space rich without exploding
    // run times); inner-loop bodies hold assignments and conditionals.
    let roll = rng.below(100);
    if depth == 0 && roll < 20 {
        let mut then_body = Vec::new();
        let mut else_body = Vec::new();
        for _ in 0..(1 + rng.below(2)) {
            then_body.push(StmtSpec::Assign(gen_assign(
                rng, cfg, arrays, scalars, n_idx, false,
            )));
        }
        if rng.chance(1, 2) {
            else_body.push(StmtSpec::Assign(gen_assign(
                rng, cfg, arrays, scalars, n_idx, false,
            )));
        }
        StmtSpec::If {
            cond: CondSpec {
                index: CondIndex::Outer,
                greater: rng.chance(1, 2),
                rhs: rng.range(outer_lo, outer_lo + outer_trips - 1),
            },
            then_body,
            else_body,
        }
    } else if depth == 0 && roll < 40 {
        let lo = rng.range(1, 2);
        let bound = if rng.chance(1, 2) && outer_lo + outer_trips > lo {
            InnerBound::Triangular
        } else {
            InnerBound::Extent(rng.range(2, 5))
        };
        let mut inner_body = Vec::new();
        for _ in 0..(1 + rng.below(2)) {
            if rng.chance(1, 5) {
                inner_body.push(StmtSpec::If {
                    cond: CondSpec {
                        index: CondIndex::Inner,
                        greater: rng.chance(1, 2),
                        rhs: rng.range(1, 4),
                    },
                    then_body: vec![StmtSpec::Assign(gen_assign(
                        rng, cfg, arrays, scalars, n_idx, true,
                    ))],
                    else_body: vec![],
                });
            } else {
                inner_body.push(StmtSpec::Assign(gen_assign(
                    rng, cfg, arrays, scalars, n_idx, true,
                )));
            }
        }
        StmtSpec::Inner {
            lo,
            bound,
            body: inner_body,
        }
    } else {
        StmtSpec::Assign(gen_assign(rng, cfg, arrays, scalars, n_idx, false))
    }
}

fn gen_sub(rng: &mut Rng, cfg: &GenConfig, inner: bool) -> SubSpec {
    // Outer coefficient: mostly ±1 (the common stride), sometimes 0 (a
    // loop-invariant element — a guaranteed cross-segment dependence when
    // written) or ±2 (a strided access).
    let kc = *rng.pick(&[1, 1, 1, -1, 0, 2, -2]);
    let jc = if inner {
        if rng.chance(cfg.coupling_pct, 100) {
            *rng.pick(&[1, 1, -1])
        } else {
            0
        }
    } else {
        0
    };
    SubSpec {
        kc,
        jc,
        off: rng.range(-3, 3),
    }
}

fn gen_assign(
    rng: &mut Rng,
    cfg: &GenConfig,
    arrays: usize,
    scalars: usize,
    n_idx: usize,
    inner: bool,
) -> AssignSpec {
    // With indirection arrays declared, 3 in 10 array accesses (target or
    // term alike) go through one — gathers, scatters and duplicate-index
    // scatters all arise from the same draw.
    let target = if scalars > 0 && rng.chance(1, 4) {
        TargetSpec::Scalar(rng.below(scalars))
    } else if n_idx > 0 && rng.chance(3, 10) {
        TargetSpec::ArrInd {
            arr: rng.below(arrays),
            idx: rng.below(n_idx),
        }
    } else {
        TargetSpec::Arr {
            arr: rng.below(arrays),
            sub: gen_sub(rng, cfg, inner),
        }
    };
    let n_terms = 1 + rng.below(3);
    let mut terms = Vec::new();
    for _ in 0..n_terms {
        let t = match rng.below(10) {
            0..=4 if n_idx > 0 && rng.chance(3, 10) => TermSpec::ArrInd {
                arr: rng.below(arrays),
                idx: rng.below(n_idx),
            },
            0..=4 => TermSpec::Arr {
                arr: rng.below(arrays),
                sub: gen_sub(rng, cfg, inner),
            },
            5..=6 if scalars > 0 => TermSpec::Scalar(rng.below(scalars)),
            7 => {
                if inner {
                    TermSpec::InnerIdx
                } else {
                    TermSpec::OuterIdx
                }
            }
            8 => TermSpec::OuterIdx,
            _ => TermSpec::Const(rng.range(-3, 3)),
        };
        // Multiplication only against constants and indices: products of
        // two loads compound across iterations and overflow to infinity,
        // which makes byte-exact comparison vacuous (every run saturates).
        let op = match t {
            TermSpec::Const(_) | TermSpec::OuterIdx | TermSpec::InnerIdx => {
                *rng.pick(&[TermOp::Add, TermOp::Sub, TermOp::Mul])
            }
            _ => *rng.pick(&[TermOp::Add, TermOp::Add, TermOp::Sub]),
        };
        terms.push((op, t));
    }
    AssignSpec { target, terms }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refidem_ir::pretty;

    #[test]
    fn equal_seeds_build_identical_programs() {
        for seed in 0..20 {
            let a = generate(seed);
            let b = generate(seed);
            assert_eq!(a.spec, b.spec, "seed {seed}: specs differ");
            assert_eq!(
                pretty::program_to_string(&a.program),
                pretty::program_to_string(&b.program),
                "seed {seed}: programs differ"
            );
        }
    }

    #[test]
    fn generated_subscripts_stay_in_bounds() {
        // The sequential interpreter addresses memory through the layout;
        // an out-of-bounds subscript shows up as an execution error (or a
        // wrong-variable store that the differential runner would catch).
        // Here: every generated program interprets cleanly.
        use refidem_ir::exec::SeqInterp;
        use refidem_specsim::run::initial_memory;
        for seed in 0..100 {
            let g = generate(seed);
            let proc = &g.program.procedures[0];
            let mut memory = initial_memory(proc);
            SeqInterp::new()
                .run_procedure(proc, &mut memory)
                .unwrap_or_else(|e| panic!("seed {seed}: execution failed: {e}"));
        }
    }

    #[test]
    fn generated_regions_resolve_and_match_the_discovered_schedule() {
        use refidem_analysis::schedule::discover_regions;
        use refidem_ir::ids::ProcId;
        for seed in 0..50 {
            let g = generate(seed);
            assert_eq!(g.regions.len(), g.spec.regions.len());
            assert_eq!(g.spec.serial.len(), g.spec.regions.len() + 1);
            for (i, region) in g.regions.iter().enumerate() {
                let (_, l) = region.resolve(&g.program).expect("region resolves");
                assert_eq!(l.label.as_deref(), Some(region_label(i).as_str()));
                assert!(g.spec.regions[i].outer_trips >= 1);
            }
            // The generator's schedule is exactly what discovery sees.
            let schedule = discover_regions(&g.program, ProcId::from_index(0));
            assert_eq!(schedule.len(), g.regions.len());
            for (d, r) in schedule.regions.iter().zip(&g.regions) {
                assert_eq!(d.spec, *r);
            }
            assert!(g.spec.stmt_count() >= 1);
        }
    }

    #[test]
    fn shape_space_is_diverse() {
        let mut saw_if = false;
        let mut saw_inner = false;
        let mut saw_triangular = false;
        let mut saw_coupled = false;
        let mut saw_scalar_target = false;
        let mut region_counts = [0usize; 4];
        let mut saw_serial_stmt = false;
        for seed in 0..200 {
            let g = generate(seed);
            region_counts[g.spec.regions.len()] += 1;
            saw_serial_stmt |= g.spec.serial.iter().any(|c| !c.is_empty());
            for s in g.spec.regions.iter().flat_map(|r| &r.body) {
                match s {
                    StmtSpec::If { .. } => saw_if = true,
                    StmtSpec::Inner { bound, body, .. } => {
                        saw_inner = true;
                        if *bound == InnerBound::Triangular {
                            saw_triangular = true;
                        }
                        for inner in body {
                            if let StmtSpec::Assign(a) = inner {
                                let mut subs = Vec::new();
                                if let TargetSpec::Arr { sub, .. } = &a.target {
                                    subs.push(*sub);
                                }
                                for (_, t) in &a.terms {
                                    if let TermSpec::Arr { sub, .. } = t {
                                        subs.push(*sub);
                                    }
                                }
                                if subs.iter().any(|s| s.kc != 0 && s.jc != 0) {
                                    saw_coupled = true;
                                }
                            }
                        }
                    }
                    StmtSpec::Assign(a) => {
                        if matches!(a.target, TargetSpec::Scalar(_)) {
                            saw_scalar_target = true;
                        }
                    }
                }
            }
        }
        assert!(saw_if, "no conditional generated in 200 seeds");
        assert!(saw_inner, "no inner loop generated in 200 seeds");
        assert!(saw_triangular, "no triangular loop generated in 200 seeds");
        assert!(saw_coupled, "no coupled subscript generated in 200 seeds");
        assert!(saw_scalar_target, "no scalar target generated in 200 seeds");
        assert!(saw_serial_stmt, "no serial chunk statement in 200 seeds");
        // The whole 0–3 region range occurs, with multi-region programs
        // well represented.
        assert!(region_counts[0] > 0, "no serial-only program");
        assert!(region_counts[1] > 0, "no single-region program");
        assert!(
            region_counts[2] + region_counts[3] >= 40,
            "multi-region programs are underrepresented: {region_counts:?}"
        );
    }

    #[test]
    fn negative_coefficients_shift_into_bounds() {
        // A handwritten spec with an all-negative subscript must still
        // build an in-bounds program: a(-k - 2) over k in [1, 8] shifts to
        // a(-k + 9) with extent 8 (minimum subscript pinned to 1).
        let spec = ProgramSpec {
            arrays: 1,
            scalars: 0,
            serial: vec![vec![], vec![]],
            regions: vec![RegionPart {
                outer_lo: 1,
                outer_trips: 8,
                while_shape: None,
                body: vec![StmtSpec::Assign(AssignSpec {
                    target: TargetSpec::Arr {
                        arr: 0,
                        sub: SubSpec::outer(-1, -2),
                    },
                    terms: vec![(TermOp::Add, TermSpec::OuterIdx)],
                })],
            }],
            index_arrays: vec![],
            live_out_arrays: vec![0],
            live_out_scalars: vec![],
        };
        let built = spec.build();
        use refidem_ir::exec::SeqInterp;
        use refidem_specsim::run::initial_memory;
        let proc = &built.program.procedures[0];
        let mut memory = initial_memory(proc);
        SeqInterp::new()
            .run_procedure(proc, &mut memory)
            .expect("shifted program executes");
    }

    #[test]
    fn serial_chunks_reject_loop_dependent_statements() {
        let spec = ProgramSpec {
            arrays: 1,
            scalars: 0,
            serial: vec![vec![StmtSpec::Assign(AssignSpec {
                target: TargetSpec::Arr {
                    arr: 0,
                    sub: SubSpec::outer(1, 0),
                },
                terms: vec![(TermOp::Add, TermSpec::Const(1))],
            })]],
            regions: vec![],
            index_arrays: vec![],
            live_out_arrays: vec![0],
            live_out_scalars: vec![],
        };
        let result = std::panic::catch_unwind(|| spec.build());
        assert!(result.is_err(), "a k-dependent serial subscript must panic");
    }
}
