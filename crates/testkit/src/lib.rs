//! # refidem-testkit — cross-layer differential testing
//!
//! The executable statements of the paper's Lemmas 1 and 2 — *the final
//! non-speculative memory of a HOSE or CASE execution equals the sequential
//! interpretation* — only mean something if they are tested on far more
//! program shapes than a handful of hand-written loops. This crate is the
//! scenario engine for that:
//!
//! * [`rng`] — a tiny deterministic SplitMix64 generator, so every test run
//!   is reproducible from a `u64` seed with no external dependencies;
//! * [`gen`] — a seeded whole-program generator: 0–3 region loops with
//!   serial prologue/gap/epilogue chunks between them, affine subscripts
//!   with tunable index coupling, conditionals, scalar/array mixes, nested
//!   and triangular inner loops, and randomized live-out sets, all lowered
//!   through the public [`ProcBuilder`](refidem_ir::build::ProcBuilder)
//!   exactly as a user program would be;
//! * [`diff`] — the whole-program differential runner: for every program
//!   it discovers and labels *every* region of the schedule, runs HOSE and
//!   CASE across a speculative-storage capacity ladder (1, 2, 4, 16, 256)
//!   via `simulate_program` and asserts byte-exact final-memory
//!   equivalence with the sequential interpreter plus per-region capacity,
//!   rollback, restart-bound and forward-progress invariants — with
//!   optional label *tampering* to fault-inject unsound labelings;
//! * [`shrink`](mod@shrink) — a greedy delta-debugging shrinker over the generator's
//!   declarative program spec, emitting a minimized reproducer as
//!   `ProcBuilder` code;
//! * [`chaos`] — the fault-injection campaign: seeded
//!   [`FaultPlan`](refidem_specsim::FaultPlan) schedules over the corpus
//!   under tight degradation budgets, where every run must end byte-exact
//!   (possibly via recorded serial degradation) or in the structured error
//!   its schedule injected.
//!
//! ## Quick use
//!
//! ```
//! use refidem_testkit::{diff::DiffConfig, run_suite};
//!
//! let report = run_suite(0..25, &DiffConfig::default());
//! assert_eq!(report.failures.len(), 0, "first failure: {:?}", report.failures.first());
//! assert_eq!(report.programs, 25);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod diff;
pub mod gen;
pub mod rng;
pub mod shrink;

pub use chaos::{
    chaos_config, chaos_governor, chaos_plan, perturb_enabled, run_chaos_suite, CHAOS_PERTURB_ENV,
};
pub use diff::{
    check_generated, check_generated_with, check_program, check_program_with, check_spec,
    check_spec_with, DiffConfig, DiffFailure, DiffStats, Tamper, CAPACITY_LADDER,
};
pub use gen::{
    generate, generate_with, giant_block, region_label, GenConfig, GeneratedBuild,
    GeneratedProgram, ProgramSpec, RegionPart, GIANT_BLOCK_LABEL,
};
pub use refidem_specsim::sweep::{SweepExec, SweepPlan};
pub use rng::Rng;
pub use shrink::{reproducer, shrink, ShrinkResult};

use std::collections::BTreeSet;
use std::ops::Range;

/// Outcome of a whole generated-suite run.
#[derive(Clone, Debug)]
pub struct SuiteReport {
    /// Programs generated and checked.
    pub programs: usize,
    /// Distinct programs among them (by pretty-printed listing).
    pub distinct: usize,
    /// Aggregate simulation statistics over all passing checks.
    pub stats: DiffStats,
    /// Failing seeds with their failures (empty on a clean run).
    pub failures: Vec<(u64, DiffFailure)>,
}

/// Generates one program per seed, runs the differential check on each, and
/// aggregates the outcome. The workhorse of the fuzz-style integration
/// tests; also handy from a debugger or example binary.
///
/// The batch is sharded over a [`SweepExec`] worker pool — the default
/// executor honors `REFIDEM_JOBS` and falls back to the machine's
/// available parallelism. The merge is ordered and [`DiffStats::merge`] is
/// the reduction, so the report (stats, distinct count, failure order) is
/// identical at any worker count.
pub fn run_suite(seeds: Range<u64>, cfg: &DiffConfig) -> SuiteReport {
    run_suite_with(seeds, cfg, &SweepExec::new())
}

/// [`run_suite`] on an explicit executor.
pub fn run_suite_with(seeds: Range<u64>, cfg: &DiffConfig, exec: &SweepExec) -> SuiteReport {
    let plan: SweepPlan<u64> = seeds.map(|seed| (format!("seed {seed}"), seed)).collect();
    let outcomes = plan.run(exec, |&seed| {
        let g = generate(seed);
        let listing = refidem_ir::pretty::program_to_string(&g.program);
        (seed, listing, check_generated(&g, cfg))
    });
    // Deterministic ordered merge: listings dedup in a sorted set, stats
    // fold via DiffStats::merge, failures keep seed order.
    let mut listings: BTreeSet<String> = BTreeSet::new();
    let mut stats = DiffStats::default();
    let mut failures = Vec::new();
    let mut programs = 0usize;
    for (seed, listing, outcome) in outcomes {
        programs += 1;
        listings.insert(listing);
        match outcome {
            Ok(s) => stats.merge(&s),
            Err(f) => failures.push((seed, f)),
        }
    }
    SuiteReport {
        programs,
        distinct: listings.len(),
        stats,
        failures,
    }
}
