//! A small, deterministic pseudo-random number generator.
//!
//! The testkit must be reproducible from a single `u64` seed on every
//! platform and toolchain, with no external dependencies, so it carries its
//! own generator: SplitMix64 (Steele, Lea & Flood), the stateless-jump
//! generator also used to seed xoshiro. Statistical quality is far beyond
//! what program generation needs, and the implementation is eight lines.

/// SplitMix64 generator state.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds produce equal streams.
    pub fn new(seed: u64) -> Self {
        Rng {
            // Avoid the all-zero fixed point of the raw mixing function by
            // pre-advancing once from a seed-derived state.
            state: seed.wrapping_add(0x9e3779b97f4a7c15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. `n` must be positive.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform `i64` in the inclusive range `[lo, hi]`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as i64
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u32, den: u32) -> bool {
        debug_assert!(den > 0);
        (self.next_u64() % den as u64) < num as u64
    }

    /// Picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_are_inclusive_and_cover_endpoints() {
        let mut r = Rng::new(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let v = r.range(-2, 3);
            assert!((-2..=3).contains(&v));
            seen_lo |= v == -2;
            seen_hi |= v == 3;
        }
        assert!(seen_lo && seen_hi);
        for _ in 0..100 {
            assert!(r.below(5) < 5);
        }
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = Rng::new(11);
        let hits = (0..10_000).filter(|_| r.chance(1, 4)).count();
        assert!((1800..3200).contains(&hits), "got {hits}");
    }
}
