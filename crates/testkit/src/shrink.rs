//! Case minimization and reproducer emission.
//!
//! When the differential runner finds a failing program, the raw generated
//! case is rarely the smallest demonstration of the bug: most of its
//! statements, terms, regions and iterations are noise. The shrinker
//! performs a classical greedy delta-debugging loop over the
//! [`ProgramSpec`] (not the lowered IR — specs compose freely, IR
//! reference ids do not): it enumerates single-step simplifications —
//! dropping whole regions, emptying serial chunks, dropping statements,
//! simplifying subscripts, halving trip counts — adopts the first one that
//! still fails the differential check, and repeats until no simplification
//! preserves the failure or the check budget runs out.
//!
//! [`reproducer`] renders a minimized spec as ready-to-paste `ProcBuilder`
//! code, so a divergence found by a 3 a.m. fuzz run turns into a unit test
//! in the morning.

use crate::diff::{check_spec, DiffConfig, DiffFailure};
use crate::gen::{
    region_label, AssignSpec, CondIndex, IndexPattern, InnerBound, ProgramSpec, StmtSpec, SubSpec,
    TargetSpec, TermOp, TermSpec,
};

/// Result of a shrink run.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// The minimized spec (still failing).
    pub spec: ProgramSpec,
    /// The failure the minimized spec exhibits.
    pub failure: DiffFailure,
    /// Differential checks spent.
    pub checks: usize,
    /// Statement count before / after.
    pub stmts_before: usize,
    /// Statement count after shrinking.
    pub stmts_after: usize,
}

/// Greedily minimizes a failing spec. `spec` must fail `check_spec` under
/// `cfg`; panics otherwise (a shrinker run on a passing case is a harness
/// bug). `max_checks` bounds the total differential checks.
pub fn shrink(spec: &ProgramSpec, cfg: &DiffConfig, max_checks: usize) -> ShrinkResult {
    let checks = std::cell::Cell::new(0usize);
    let fails = |s: &ProgramSpec| -> Option<DiffFailure> {
        checks.set(checks.get() + 1);
        check_spec(s, cfg).err()
    };
    let failure = fails(spec).expect("shrink() requires a spec that fails the differential check");
    let stmts_before = spec.stmt_count();
    let mut current = spec.clone();
    let mut current_failure = failure;
    'outer: loop {
        if checks.get() >= max_checks {
            break;
        }
        for candidate in candidates(&current) {
            if checks.get() >= max_checks {
                break 'outer;
            }
            if let Some(f) = fails(&candidate) {
                current = candidate;
                current_failure = f;
                continue 'outer;
            }
        }
        break;
    }
    ShrinkResult {
        stmts_after: current.stmt_count(),
        spec: current,
        failure: current_failure,
        checks: checks.get(),
        stmts_before,
    }
}

/// All single-step simplifications of a spec, most aggressive first.
fn candidates(spec: &ProgramSpec) -> Vec<ProgramSpec> {
    let mut out = Vec::new();
    // Drop a whole region (its surrounding serial chunks merge).
    for r in 0..spec.regions.len() {
        let mut s = spec.clone();
        s.regions.remove(r);
        let following = s.serial.remove(r + 1);
        s.serial[r].extend(following);
        out.push(s);
    }
    // De-irregularize before statement surgery: a WHILE region becomes a
    // plain counted DO, an indirection array collapses to the identity
    // permutation (keeping the reference shape but removing the data
    // dependence on the pattern), and once nothing uses them the
    // indirection arrays disappear entirely.
    for r in 0..spec.regions.len() {
        if spec.regions[r].while_shape.is_some() {
            let mut s = spec.clone();
            s.regions[r].while_shape = None;
            out.push(s);
        }
    }
    for x in 0..spec.index_arrays.len() {
        if spec.index_arrays[x] != IndexPattern::Identity {
            let mut s = spec.clone();
            s.index_arrays[x] = IndexPattern::Identity;
            out.push(s);
        }
    }
    if !spec.index_arrays.is_empty() && !spec.has_irregular() {
        let mut s = spec.clone();
        s.index_arrays.clear();
        out.push(s);
    }
    // Empty out or simplify each serial chunk (empty chunks are legal —
    // unlike region bodies).
    for c in 0..spec.serial.len() {
        if !spec.serial[c].is_empty() {
            let mut s = spec.clone();
            s.serial[c].clear();
            out.push(s);
        }
        for chunk in stmt_list_variants(&spec.serial[c]) {
            let mut s = spec.clone();
            s.serial[c] = chunk;
            out.push(s);
        }
    }
    // Per region: drop or simplify body statements, halve the trip count,
    // normalize the loop base.
    for r in 0..spec.regions.len() {
        let region = &spec.regions[r];
        for body in stmt_list_variants(&region.body) {
            if !body.is_empty() {
                let mut s = spec.clone();
                s.regions[r].body = body;
                out.push(s);
            }
        }
        if region.outer_trips > 2 {
            let mut s = spec.clone();
            s.regions[r].outer_trips = (region.outer_trips / 2).max(2);
            out.push(s);
        }
        if region.outer_lo != 1 {
            let mut s = spec.clone();
            s.regions[r].outer_lo = 1;
            out.push(s);
        }
    }
    out
}

/// Variants of a statement list: each statement dropped, each conditional
/// flattened into its branches, and each statement's own simplifications.
fn stmt_list_variants(stmts: &[StmtSpec]) -> Vec<Vec<StmtSpec>> {
    let mut out = Vec::new();
    for i in 0..stmts.len() {
        // Drop statement i.
        let mut dropped: Vec<StmtSpec> = stmts.to_vec();
        dropped.remove(i);
        out.push(dropped);
        // Flatten a conditional into its branches (removes the control
        // dependence while keeping the accesses).
        if let StmtSpec::If {
            then_body,
            else_body,
            ..
        } = &stmts[i]
        {
            let mut flat: Vec<StmtSpec> = stmts.to_vec();
            let mut replacement = then_body.clone();
            replacement.extend(else_body.iter().cloned());
            flat.splice(i..=i, replacement);
            out.push(flat);
        }
        // In-place simplifications of statement i.
        for v in stmt_variants(&stmts[i]) {
            let mut replaced: Vec<StmtSpec> = stmts.to_vec();
            replaced[i] = v;
            out.push(replaced);
        }
    }
    out
}

fn stmt_variants(s: &StmtSpec) -> Vec<StmtSpec> {
    let mut out = Vec::new();
    match s {
        StmtSpec::Assign(a) => {
            for a2 in assign_variants(a) {
                out.push(StmtSpec::Assign(a2));
            }
        }
        StmtSpec::If {
            cond,
            then_body,
            else_body,
        } => {
            if !else_body.is_empty() {
                out.push(StmtSpec::If {
                    cond: *cond,
                    then_body: then_body.clone(),
                    else_body: vec![],
                });
            }
            for tb in stmt_list_variants(then_body) {
                if !tb.is_empty() {
                    out.push(StmtSpec::If {
                        cond: *cond,
                        then_body: tb,
                        else_body: else_body.clone(),
                    });
                }
            }
            for eb in stmt_list_variants(else_body) {
                out.push(StmtSpec::If {
                    cond: *cond,
                    then_body: then_body.clone(),
                    else_body: eb,
                });
            }
        }
        StmtSpec::Inner { lo, bound, body } => {
            if let InnerBound::Extent(e) = bound {
                if *e > 2 {
                    out.push(StmtSpec::Inner {
                        lo: *lo,
                        bound: InnerBound::Extent(e - 1),
                        body: body.clone(),
                    });
                }
            }
            for b in stmt_list_variants(body) {
                if !b.is_empty() {
                    out.push(StmtSpec::Inner {
                        lo: *lo,
                        bound: *bound,
                        body: b,
                    });
                }
            }
        }
    }
    out
}

fn assign_variants(a: &AssignSpec) -> Vec<AssignSpec> {
    let mut out = Vec::new();
    // Drop terms (keep at least one).
    if a.terms.len() > 1 {
        for i in 0..a.terms.len() {
            let mut terms = a.terms.clone();
            terms.remove(i);
            out.push(AssignSpec {
                target: a.target.clone(),
                terms,
            });
        }
    }
    // Simplify subscripts: move offsets toward zero, strides toward unit.
    let simplify_sub = |sub: SubSpec| -> Vec<SubSpec> {
        let mut subs = Vec::new();
        if sub.off != 0 {
            subs.push(SubSpec { off: 0, ..sub });
        }
        if sub.kc.abs() > 1 {
            subs.push(SubSpec {
                kc: sub.kc.signum(),
                ..sub
            });
        }
        if sub.jc != 0 {
            subs.push(SubSpec { jc: 0, ..sub });
        }
        subs
    };
    if let TargetSpec::Arr { arr, sub } = &a.target {
        for s2 in simplify_sub(*sub) {
            out.push(AssignSpec {
                target: TargetSpec::Arr { arr: *arr, sub: s2 },
                terms: a.terms.clone(),
            });
        }
    }
    // Replace an indirect store/load by the plain affine access `a(k)` —
    // same array, same per-iteration touch, no indirection.
    if let TargetSpec::ArrInd { arr, .. } = &a.target {
        out.push(AssignSpec {
            target: TargetSpec::Arr {
                arr: *arr,
                sub: SubSpec::outer(1, 0),
            },
            terms: a.terms.clone(),
        });
    }
    for (i, (op, t)) in a.terms.iter().enumerate() {
        if let TermSpec::Arr { arr, sub } = t {
            for s2 in simplify_sub(*sub) {
                let mut terms = a.terms.clone();
                terms[i] = (*op, TermSpec::Arr { arr: *arr, sub: s2 });
                out.push(AssignSpec {
                    target: a.target.clone(),
                    terms,
                });
            }
        }
        if let TermSpec::ArrInd { arr, .. } = t {
            let mut terms = a.terms.clone();
            terms[i] = (
                *op,
                TermSpec::Arr {
                    arr: *arr,
                    sub: SubSpec::outer(1, 0),
                },
            );
            out.push(AssignSpec {
                target: a.target.clone(),
                terms,
            });
        }
        if !matches!(t, TermSpec::Const(_)) {
            let mut terms = a.terms.clone();
            terms[i] = (*op, TermSpec::Const(1));
            out.push(AssignSpec {
                target: a.target.clone(),
                terms,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Reproducer emission.
// ---------------------------------------------------------------------------

/// Renders a spec as self-contained `ProcBuilder` code building the exact
/// program [`ProgramSpec::build`] produces (same shifts, same extents, same
/// reference-id order), ready to paste into a regression test.
pub fn reproducer(spec: &ProgramSpec) -> String {
    let (shifts, extents) = spec.layout_plan();
    let idx_n = spec.idx_extent();
    let mut out = String::new();
    let mut push = |line: &str| {
        out.push_str(line);
        out.push('\n');
    };
    push("// Reproducer emitted by refidem-testkit's shrinker.");
    push("// Build the program, label every region (R0, R1, …), and compare");
    push("// whole-program HOSE/CASE against the sequential interpretation.");
    push("use refidem_ir::affine::AffineExpr;");
    push("use refidem_ir::build::{ac, add, av, cmp, idx, mul, num, sub, ProcBuilder};");
    if spec.index_arrays.is_empty() {
        push("use refidem_ir::expr::CmpOp;");
    } else {
        push("use refidem_ir::expr::{BinOp, CmpOp, Expr};");
    }
    push("use refidem_ir::program::Program;");
    push("");
    push("let mut b = ProcBuilder::new(\"repro\");");
    for (i, e) in extents.iter().enumerate() {
        push(&format!("let a{i} = b.array(\"a{i}\", &[{e}]);"));
    }
    for i in 0..spec.scalars {
        push(&format!("let s{i} = b.scalar(\"s{i}\");"));
    }
    for i in 0..spec.index_arrays.len() {
        push(&format!("let x{i} = b.array(\"x{i}\", &[{idx_n}]);"));
    }
    // `build()` declares both indices unconditionally; match it so the
    // emitted code produces a byte-identical variable table (and layout)
    // even when the shrunk spec has no inner loop (or no region at all).
    push(if spec.regions.is_empty() && spec.index_arrays.is_empty() {
        "let _k = b.index(\"k\"); // unreferenced, but keeps the var table identical"
    } else {
        "let k = b.index(\"k\");"
    });
    push(if spec.regions.iter().any(|r| spec_uses_inner(&r.body)) {
        "let j = b.index(\"j\");"
    } else {
        "let _j = b.index(\"j\"); // unreferenced, but keeps the var table identical"
    });
    let live: Vec<String> = spec
        .live_out_arrays
        .iter()
        .map(|i| format!("a{i}"))
        .chain(spec.live_out_scalars.iter().map(|i| format!("s{i}")))
        .collect();
    push(&format!("b.live_out(&[{}]);", live.join(", ")));
    let mut counter = 0usize;
    let mut top_level: Vec<String> = Vec::new();
    for (i, pat) in spec.index_arrays.iter().enumerate() {
        top_level.push(emit_init_loop(&mut out, i, idx_n, pat));
    }
    for (i, region) in spec.regions.iter().enumerate() {
        top_level.extend(emit_stmts(
            &mut out,
            &spec.serial[i],
            &shifts,
            0,
            &mut counter,
        ));
        let k_shift = 1 - region.outer_lo;
        let body_names = emit_stmts(&mut out, &region.body, &shifts, k_shift, &mut counter);
        let name = format!("r{i}");
        match &region.while_shape {
            None => out.push_str(&format!(
                "let {name} = b.do_loop_labeled({:?}, k, ac({}), ac({}), vec![{}]);\n",
                region_label(i),
                region.outer_lo,
                region.outer_hi(),
                body_names.join(", ")
            )),
            Some(ws) => {
                // Matches build(): the condition's reference is created
                // after the body's, so ids line up.
                let watched = sub_code(ws.sub, shifts[ws.arr]);
                out.push_str(&format!(
                    "let cond{i} = cmp(CmpOp::Le, b.load_elem(a{}, vec![{watched}]), num({:?}));\n",
                    ws.arr,
                    ws.limit as f64 * 0.5
                ));
                out.push_str(&format!(
                    "let {name} = b.while_loop_labeled({:?}, k, ac({}), ac({}), cond{i}, vec![{}]);\n",
                    region_label(i),
                    region.outer_lo,
                    region.outer_hi(),
                    body_names.join(", ")
                ));
            }
        }
        top_level.push(name);
    }
    top_level.extend(emit_stmts(
        &mut out,
        spec.serial.last().expect("epilogue chunk"),
        &shifts,
        0,
        &mut counter,
    ));
    out.push_str("let mut program = Program::new(\"repro\");\n");
    out.push_str(&format!(
        "program.add_procedure(b.build(vec![{}]));\n",
        top_level.join(", ")
    ));
    out
}

/// Emits the initialization loop of indirection array `x{i}` exactly as
/// [`ProgramSpec::build`] constructs it (same builder-call order, hence the
/// same statement and reference ids). Returns the loop's variable name.
fn emit_init_loop(out: &mut String, i: usize, n: i64, pat: &IndexPattern) -> String {
    let name = format!("ix{i}");
    let line = match pat {
        IndexPattern::Identity => format!(
            "let {name} = {{ let st = b.assign_elem(x{i}, vec![av(k)], idx(k)); \
             b.do_loop(k, ac(1), ac({n}), vec![st]) }};\n"
        ),
        IndexPattern::Reversal => format!(
            "let {name} = {{ let st = b.assign_elem(x{i}, vec![av(k)], sub(num({:?}), idx(k))); \
             b.do_loop(k, ac(1), ac({n}), vec![st]) }};\n",
            (n + 1) as f64
        ),
        IndexPattern::CyclicShift(s) => {
            let s = crate::gen::cyclic_shift_amount(*s, n);
            format!(
                "let {name} = {{ \
                 let stay = b.assign_elem(x{i}, vec![av(k)], add(idx(k), num({stay:?}))); \
                 let wrap = b.assign_elem(x{i}, vec![av(k)], add(idx(k), num({wrap:?}))); \
                 let g = b.if_then_else(cmp(CmpOp::Le, idx(k), num({edge:?})), vec![stay], vec![wrap]); \
                 b.do_loop(k, ac(1), ac({n}), vec![g]) }};\n",
                stay = s as f64,
                wrap = (s - n) as f64,
                edge = (n - s) as f64
            )
        }
        IndexPattern::ClampLow(c) => format!(
            "let {name} = {{ let st = b.assign_elem(x{i}, vec![av(k)], \
             Expr::bin(BinOp::Min, idx(k), num({:?}))); \
             b.do_loop(k, ac(1), ac({n}), vec![st]) }};\n",
            crate::gen::clamp_bound(*c, n) as f64
        ),
        IndexPattern::ClampHigh(c) => format!(
            "let {name} = {{ let st = b.assign_elem(x{i}, vec![av(k)], \
             Expr::bin(BinOp::Max, idx(k), num({:?}))); \
             b.do_loop(k, ac(1), ac({n}), vec![st]) }};\n",
            crate::gen::clamp_bound(*c, n) as f64
        ),
    };
    out.push_str(&line);
    name
}

fn spec_uses_inner(stmts: &[StmtSpec]) -> bool {
    stmts.iter().any(|s| match s {
        StmtSpec::Inner { .. } => true,
        StmtSpec::If {
            then_body,
            else_body,
            ..
        } => spec_uses_inner(then_body) || spec_uses_inner(else_body),
        StmtSpec::Assign(_) => false,
    })
}

fn sub_code(sub: SubSpec, shift: i64) -> String {
    let mut parts = Vec::new();
    match sub.kc {
        0 => {}
        1 => parts.push("av(k)".to_string()),
        c => parts.push(format!("AffineExpr::scaled_var(k, {c})")),
    }
    match sub.jc {
        0 => {}
        1 => parts.push("av(j)".to_string()),
        c => parts.push(format!("AffineExpr::scaled_var(j, {c})")),
    }
    let off = sub.off + shift;
    if off != 0 || parts.is_empty() {
        parts.push(format!("ac({off})"));
    }
    parts.join(" + ")
}

/// The normalized-position subscript `k + k_shift` of an indirection-array
/// access, as builder code.
fn pos_code(k_shift: i64) -> String {
    if k_shift == 0 {
        "av(k)".to_string()
    } else {
        format!("av(k) + ac({k_shift})")
    }
}

/// Builder code for the indirect reference `a_arr(x_idx(k + k_shift))`,
/// with the same builder-call order as `Lowering::indirect_ref` (the inner
/// reference first) so reference ids line up.
fn indirect_code(arr: usize, idx: usize, k_shift: i64) -> String {
    format!(
        "{{ let p = b.aref(x{idx}, vec![{}]); let s = b.indirect(p); b.aref_subs(a{arr}, vec![s]) }}",
        pos_code(k_shift)
    )
}

fn term_code(t: &TermSpec, shifts: &[i64], k_shift: i64) -> String {
    match t {
        TermSpec::Arr { arr, sub } => format!(
            "b.load_elem(a{arr}, vec![{}])",
            sub_code(*sub, shifts[*arr])
        ),
        TermSpec::ArrInd { arr, idx } => format!(
            "{{ let r = {}; b.load_ref(r) }}",
            indirect_code(*arr, *idx, k_shift)
        ),
        TermSpec::Scalar(n) => format!("b.load(s{n})"),
        TermSpec::OuterIdx => "idx(k)".to_string(),
        TermSpec::InnerIdx => "idx(j)".to_string(),
        TermSpec::Const(c) => format!("num({:?})", *c as f64 * 0.5),
    }
}

fn rhs_code(terms: &[(TermOp, TermSpec)], shifts: &[i64], k_shift: i64) -> String {
    let mut acc: Option<String> = None;
    for (op, t) in terms {
        let e = term_code(t, shifts, k_shift);
        acc = Some(match acc {
            None => e,
            Some(prev) => {
                let f = match op {
                    TermOp::Add => "add",
                    TermOp::Sub => "sub",
                    TermOp::Mul => "mul",
                };
                format!("{f}({prev}, {e})")
            }
        });
    }
    acc.expect("assignments have at least one term")
}

/// Emits builder statements for a body; returns the emitted variable names.
fn emit_stmts(
    out: &mut String,
    stmts: &[StmtSpec],
    shifts: &[i64],
    k_shift: i64,
    counter: &mut usize,
) -> Vec<String> {
    let mut names = Vec::new();
    for s in stmts {
        let name = format!("st{}", *counter);
        *counter += 1;
        match s {
            StmtSpec::Assign(a) => {
                let rhs = rhs_code(&a.terms, shifts, k_shift);
                let line = match &a.target {
                    TargetSpec::Arr { arr, sub } => format!(
                        "let {name} = {{ let rhs = {rhs}; b.assign_elem(a{arr}, vec![{}], rhs) }};",
                        sub_code(*sub, shifts[*arr])
                    ),
                    TargetSpec::ArrInd { arr, idx } => format!(
                        "let {name} = {{ let rhs = {rhs}; let lhs = {}; b.assign(lhs, rhs) }};",
                        indirect_code(*arr, *idx, k_shift)
                    ),
                    TargetSpec::Scalar(n) => {
                        format!("let {name} = {{ let rhs = {rhs}; b.assign_scalar(s{n}, rhs) }};")
                    }
                };
                out.push_str(&line);
                out.push('\n');
            }
            StmtSpec::If {
                cond,
                then_body,
                else_body,
            } => {
                let then_names = emit_stmts(out, then_body, shifts, k_shift, counter);
                let else_names = emit_stmts(out, else_body, shifts, k_shift, counter);
                let lhs = match cond.index {
                    CondIndex::Outer => "idx(k)",
                    CondIndex::Inner => "idx(j)",
                };
                let op = if cond.greater { "Gt" } else { "Le" };
                let cond_code = format!("cmp(CmpOp::{op}, {lhs}, num({:?}))", cond.rhs as f64);
                let line = if else_names.is_empty() {
                    format!(
                        "let {name} = b.if_then({cond_code}, vec![{}]);",
                        then_names.join(", ")
                    )
                } else {
                    format!(
                        "let {name} = b.if_then_else({cond_code}, vec![{}], vec![{}]);",
                        then_names.join(", "),
                        else_names.join(", ")
                    )
                };
                out.push_str(&line);
                out.push('\n');
            }
            StmtSpec::Inner { lo, bound, body } => {
                let body_names = emit_stmts(out, body, shifts, k_shift, counter);
                let upper = match bound {
                    InnerBound::Extent(e) => format!("ac({})", lo + e - 1),
                    InnerBound::Triangular => "av(k)".to_string(),
                };
                out.push_str(&format!(
                    "let {name} = b.do_loop(j, ac({lo}), {upper}, vec![{}]);\n",
                    body_names.join(", ")
                ));
            }
        }
        names.push(name);
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::Tamper;
    use crate::gen::{AssignSpec, RegionPart, TargetSpec, TermOp, TermSpec, WhileSpec};

    /// A hand-written two-region program whose first region's speculative
    /// read, once corrupted to idempotent, makes CASE read stale values
    /// without detection: `do k = 2, 13: a0(k) = a0(k-1) + 0.5`, plus
    /// noise the shrinker should strip — an independent second region, a
    /// noisy serial prologue and a scalar accumulation.
    fn broken_label_victim() -> ProgramSpec {
        let recurrence = StmtSpec::Assign(AssignSpec {
            target: TargetSpec::Arr {
                arr: 0,
                sub: SubSpec::outer(1, 0),
            },
            terms: vec![
                (
                    TermOp::Add,
                    TermSpec::Arr {
                        arr: 0,
                        sub: SubSpec::outer(1, -1),
                    },
                ),
                (TermOp::Add, TermSpec::Const(1)),
            ],
        });
        // Noise: an independent stencil on a second array (in its own
        // region), a scalar accumulation next to the recurrence, and a
        // serial prologue statement — all removable without losing the
        // failure.
        let noise1 = StmtSpec::Assign(AssignSpec {
            target: TargetSpec::Arr {
                arr: 1,
                sub: SubSpec::outer(1, 0),
            },
            terms: vec![
                (
                    TermOp::Add,
                    TermSpec::Arr {
                        arr: 1,
                        sub: SubSpec::outer(1, 2),
                    },
                ),
                (TermOp::Mul, TermSpec::Const(2)),
            ],
        });
        let noise2 = StmtSpec::Assign(AssignSpec {
            target: TargetSpec::Scalar(0),
            terms: vec![
                (TermOp::Add, TermSpec::Scalar(0)),
                (TermOp::Add, TermSpec::OuterIdx),
            ],
        });
        let serial_noise = StmtSpec::Assign(AssignSpec {
            target: TargetSpec::Scalar(0),
            terms: vec![(TermOp::Add, TermSpec::Const(2))],
        });
        ProgramSpec {
            arrays: 2,
            scalars: 1,
            serial: vec![vec![serial_noise], vec![], vec![]],
            regions: vec![
                RegionPart {
                    outer_lo: 2,
                    outer_trips: 12,
                    while_shape: None,
                    body: vec![recurrence, noise2],
                },
                RegionPart {
                    outer_lo: 1,
                    outer_trips: 8,
                    while_shape: None,
                    body: vec![noise1],
                },
            ],
            index_arrays: vec![],
            live_out_arrays: vec![0, 1],
            live_out_scalars: vec![0],
        }
    }

    fn tampered_cfg() -> DiffConfig {
        DiffConfig {
            tamper: Some(Tamper::PromoteSpeculativeReads),
            ..DiffConfig::case_only()
        }
    }

    #[test]
    fn corrupted_labels_are_detected_and_shrunk_to_the_recurrence() {
        let spec = broken_label_victim();
        let cfg = tampered_cfg();
        // The corrupted labeling must be caught by the differential runner…
        let failure = check_spec(&spec, &cfg).expect_err("corrupt labels must diverge");
        assert!(
            matches!(failure, DiffFailure::Divergence { .. }),
            "expected a memory divergence, got: {failure}"
        );
        // …and the shrinker must strip the noise — including the whole
        // second region and the serial prologue — while keeping the
        // failure.
        let result = shrink(&spec, &cfg, 4000);
        assert!(
            result.stmts_after < result.stmts_before,
            "shrinker made no progress ({} -> {})",
            result.stmts_before,
            result.stmts_after
        );
        assert!(
            result.stmts_after <= 1,
            "one statement suffices, kept {}",
            result.stmts_after
        );
        assert_eq!(
            result.spec.regions.len(),
            1,
            "the noise region must be dropped"
        );
        assert!(result.spec.serial.iter().all(|c| c.is_empty()));
        assert!(
            check_spec(&result.spec, &cfg).is_err(),
            "shrunk spec must still fail"
        );
        // The untampered original must be clean (the bug is the label, not
        // the program).
        assert!(check_spec(&result.spec, &DiffConfig::default()).is_ok());
    }

    #[test]
    fn reproducer_code_round_trips_the_program() {
        let spec = broken_label_victim();
        let code = reproducer(&spec);
        assert!(code.contains("ProcBuilder::new"));
        assert!(code.contains("do_loop_labeled(\"R0\""));
        assert!(code.contains("do_loop_labeled(\"R1\""));
        assert!(code.contains("b.live_out"));
        // The reproducer names every array with its computed extent.
        let (_, extents) = spec.layout_plan();
        for (i, e) in extents.iter().enumerate() {
            assert!(
                code.contains(&format!("b.array(\"a{i}\", &[{e}])")),
                "missing array a{i} with extent {e} in:\n{code}"
            );
        }
        // Both indices are declared even without an inner loop, so the
        // emitted program's variable table matches ProgramSpec::build.
        assert!(
            code.contains("b.index(\"j\")"),
            "missing the j index declaration in:\n{code}"
        );
    }

    #[test]
    fn shrink_panics_on_passing_specs() {
        let spec = broken_label_victim();
        let result = std::panic::catch_unwind(|| shrink(&spec, &DiffConfig::default(), 100));
        assert!(result.is_err(), "shrinking a passing spec must panic");
    }

    /// An irregular victim: a scatter-accumulate through a duplicate-laden
    /// index pattern (`a0(x0(k)) = a0(x0(k)) + 1` with `x0` clamped low, so
    /// most segments collide on one element — a genuine cross-segment flow
    /// whose read must stay speculative), buried under removable noise: a
    /// WHILE region of pure scalar churn, a second (identity) indirection
    /// array, a serial prologue and an affine noise statement.
    fn broken_irregular_victim() -> ProgramSpec {
        let scatter = StmtSpec::Assign(AssignSpec {
            target: TargetSpec::ArrInd { arr: 0, idx: 0 },
            terms: vec![
                (TermOp::Add, TermSpec::ArrInd { arr: 0, idx: 0 }),
                (TermOp::Add, TermSpec::Const(1)),
            ],
        });
        let affine_noise = StmtSpec::Assign(AssignSpec {
            target: TargetSpec::Arr {
                arr: 1,
                sub: SubSpec::outer(1, 0),
            },
            terms: vec![
                (TermOp::Add, TermSpec::OuterIdx),
                (TermOp::Add, TermSpec::ArrInd { arr: 1, idx: 1 }),
            ],
        });
        // Write-only scalar churn: no speculative *read*, so the tamper
        // cannot break this statement on its own — it is pure noise.
        let scalar_noise = StmtSpec::Assign(AssignSpec {
            target: TargetSpec::Scalar(0),
            terms: vec![
                (TermOp::Add, TermSpec::OuterIdx),
                (TermOp::Add, TermSpec::Const(1)),
            ],
        });
        let serial_noise = StmtSpec::Assign(AssignSpec {
            target: TargetSpec::Scalar(0),
            terms: vec![(TermOp::Add, TermSpec::Const(3))],
        });
        ProgramSpec {
            arrays: 2,
            scalars: 1,
            serial: vec![vec![serial_noise], vec![], vec![]],
            regions: vec![
                RegionPart {
                    outer_lo: 1,
                    outer_trips: 10,
                    while_shape: None,
                    body: vec![scatter, affine_noise],
                },
                RegionPart {
                    outer_lo: 1,
                    outer_trips: 6,
                    while_shape: Some(WhileSpec {
                        arr: 1,
                        sub: SubSpec::outer(1, 0),
                        limit: 7,
                    }),
                    body: vec![scalar_noise],
                },
            ],
            index_arrays: vec![IndexPattern::ClampLow(3), IndexPattern::Identity],
            live_out_arrays: vec![0, 1],
            live_out_scalars: vec![0],
        }
    }

    #[test]
    fn corrupted_irregular_labels_shrink_to_the_scatter() {
        let spec = broken_irregular_victim();
        let cfg = tampered_cfg();
        let failure = check_spec(&spec, &cfg).expect_err("corrupt labels must diverge");
        assert!(
            matches!(failure, DiffFailure::Divergence { .. }),
            "expected a memory divergence, got: {failure}"
        );
        let result = shrink(&spec, &cfg, 4000);
        assert!(
            result.stmts_after <= 6,
            "an irregular failure must minimize to <= 6 statements, kept {}",
            result.stmts_after
        );
        // The de-irregularize candidates must have fired on the noise: the
        // WHILE shape and the identity indirection carry no failure, so
        // neither survives minimization…
        assert!(
            result.spec.regions.iter().all(|r| r.while_shape.is_none()),
            "the WHILE noise region must be de-irregularized or dropped"
        );
        // …while the duplicate-laden pattern is load-bearing (an identity
        // permutation has no colliding addresses, hence no cross-segment
        // flow for the corrupted label to break) and must survive.
        assert!(result.spec.has_irregular(), "the scatter must survive");
        assert!(
            result
                .spec
                .index_arrays
                .iter()
                .any(|p| !matches!(p, IndexPattern::Identity)),
            "the duplicate-laden index pattern is the failure and must stay"
        );
        assert!(
            check_spec(&result.spec, &cfg).is_err(),
            "shrunk spec must still fail"
        );
        assert!(
            check_spec(&result.spec, &DiffConfig::default()).is_ok(),
            "the untampered shrunk spec must be clean"
        );
        // The reproducer renders the indirect reference shape.
        let code = reproducer(&result.spec);
        assert!(
            code.contains("b.indirect("),
            "reproducer must emit the indirection:\n{code}"
        );
    }
}
