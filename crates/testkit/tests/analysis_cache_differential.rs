//! Differential tests of the analyze-once tier: the [`AnalysisCache`]
//! must hand back labelings bit-identical to a direct `label_program`
//! across every named benchmark loop (irregular and WHILE conservative
//! fallbacks included), never evict at its default capacity, and the
//! sharded pairwise dependence worklist must be byte-deterministic at any
//! worker count. (The generated-program corpus runs the same
//! cached-vs-fresh check inside the differential runner itself — see
//! `refidem_testkit::diff`.)

use refidem_analysis::depend::{DependenceSet, SHARD_SITE_THRESHOLD};
use refidem_benchmarks::all_named_loops;
use refidem_core::cache::AnalysisCache;
use refidem_core::label::label_program_region;
use refidem_ir::sites::RefTable;
use refidem_specsim::{simulate_region, simulate_region_cached, ExecMode, SimConfig};
use refidem_testkit::{giant_block, GIANT_BLOCK_LABEL};

#[test]
fn cached_labelings_match_fresh_on_every_named_benchmark() {
    let cache = AnalysisCache::fresh();
    let benches = all_named_loops();
    for bench in &benches {
        let lookup = cache
            .label_region_cached(&bench.program, &bench.region)
            .expect("analyzes");
        assert!(!lookup.hit, "{}: first lookup must analyze", bench.name);
        let fresh = label_program_region(&bench.program, &bench.region).expect("analyzes");
        assert_eq!(lookup.region.labeling, fresh.labeling, "{}", bench.name);
        assert_eq!(
            lookup.region.analysis.deps, fresh.analysis.deps,
            "{}: cached dependences differ",
            bench.name
        );
        assert_eq!(
            lookup.region.analysis.fully_independent, fresh.analysis.fully_independent,
            "{}",
            bench.name
        );
        assert_eq!(
            lookup.region.analysis.compiler_parallelizable, fresh.analysis.compiler_parallelizable,
            "{}",
            bench.name
        );
    }
    // One entry per distinct (procedure, region); re-labeling hits every
    // one of them; the default capacity never evicts on the full suite.
    assert_eq!(cache.len(), benches.len());
    for bench in &benches {
        let again = cache
            .label_region_cached(&bench.program, &bench.region)
            .expect("analyzes");
        assert!(again.hit, "{}: second lookup must hit", bench.name);
    }
    assert_eq!(
        cache.evictions(),
        0,
        "the default capacity must swallow the whole suite"
    );
    let counters = cache.counters();
    assert_eq!(counters.hits, benches.len() as u64);
    assert_eq!(counters.misses, benches.len() as u64);
}

#[test]
fn cached_simulation_is_bit_identical_to_fresh_labeling_per_benchmark() {
    // End-to-end: simulating through the cached entry point must produce
    // the same memory image and the same report (analysis counters aside)
    // as labeling from scratch, on every named benchmark.
    let cfg = SimConfig::default().analysis_cache(AnalysisCache::fresh());
    for bench in all_named_loops() {
        let fresh = label_program_region(&bench.program, &bench.region).expect("analyzes");
        let classic = simulate_region(&bench.program, &fresh, ExecMode::Case, &cfg)
            .unwrap_or_else(|e| panic!("{}: classic sim failed: {e}", bench.name));
        let cached = simulate_region_cached(
            &bench.program,
            &bench.region.loop_label,
            ExecMode::Case,
            &cfg,
        )
        .unwrap_or_else(|e| panic!("{}: cached sim failed: {e}", bench.name));
        assert_eq!(cached.report.analysis_cache_misses, 1, "{}", bench.name);
        // The classic run compiled first (lowering misses), the cached run
        // reused its bytecode (hits) — both cache families are checked on
        // their own terms above/elsewhere, so strip them before comparing
        // the execution statistics.
        let mut strip = cached.report.clone();
        strip.analysis_cache_hits = 0;
        strip.analysis_cache_misses = 0;
        strip.analysis_cache_evictions = 0;
        strip.lowering_cache_hits = classic.report.lowering_cache_hits;
        strip.lowering_cache_misses = classic.report.lowering_cache_misses;
        strip.lowering_cache_evictions = classic.report.lowering_cache_evictions;
        assert_eq!(strip, classic.report, "{}: reports differ", bench.name);
        assert!(
            classic.memory.diff(&cached.memory, usize::MAX).is_empty(),
            "{}: memory differs",
            bench.name
        );
    }
}

#[test]
fn giant_block_dependence_analysis_is_deterministic_across_jobs() {
    // The synthetic giant block crosses the sharding threshold, so worker
    // counts above 1 exercise the sharded distinct-pair worklist with its
    // ordered merge. Labelings — and the dependence sets beneath them —
    // must be byte-identical at every worker count.
    let (program, spec) = giant_block(0x9e3779b9, 128);
    assert_eq!(spec.loop_label, GIANT_BLOCK_LABEL);
    let proc = program.procedure(spec.proc);
    let (_, region, _) = proc
        .split_at_loop(&spec.loop_label)
        .expect("giant block region is a top-level loop");
    let table = RefTable::collect(&region.body);
    assert!(
        table.len() > SHARD_SITE_THRESHOLD,
        "giant block must cross the shard threshold ({} sites)",
        table.len()
    );
    let serial = DependenceSet::analyze_with_jobs(&proc.vars, region, &table, 1);
    for jobs in [2, 4, 8] {
        let sharded = DependenceSet::analyze_with_jobs(&proc.vars, region, &table, jobs);
        assert_eq!(serial, sharded, "jobs={jobs} diverged from jobs=1");
    }
    // And through the full labeling pipeline the cached path agrees too.
    let cache = AnalysisCache::fresh();
    let lookup = cache.label_region_cached(&program, &spec).expect("labels");
    let fresh = label_program_region(&program, &spec).expect("labels");
    assert_eq!(lookup.region.labeling, fresh.labeling);
    assert_eq!(lookup.region.analysis.deps, fresh.analysis.deps);
}

#[test]
fn giant_block_is_seed_pinned() {
    let (a, _) = giant_block(7, 128);
    let (b, _) = giant_block(7, 128);
    let (c, _) = giant_block(8, 128);
    assert_eq!(a.procedures[0].body, b.procedures[0].body);
    assert_ne!(
        a.procedures[0].body, c.procedures[0].body,
        "different seeds draw different scalar tangles"
    );
}
