//! Three-backend differential suite: oracle vs lowered vs fused.
//!
//! The compiled engines (`refidem_ir::lowered`, plain bytecode and the
//! fused superinstruction tier) must be *observationally identical* to the
//! tree-walking interpreter, not merely produce the same final memory:
//! same access order (traces), same dynamic counts, same statement-unit
//! accounting, and — under the speculation engine — the same violations,
//! roll-backs, overflows and cycle counts at every capacity point. This
//! suite asserts exactly that across all 1024 generated testkit programs
//! and every named benchmark loop, sharding the corpus over the sweep
//! executor (a failing seed's assertion panic propagates out of the pool
//! with the seed's identity in the message).

use refidem_benchmarks::all_named_loops;
use refidem_core::label::label_program;
use refidem_ir::exec::{CountingStore, DynCounts, PlainStore, SegmentExec, SeqInterp};
use refidem_ir::ids::ProcId;
use refidem_ir::lowered::{fused::fuse, lower, ExecBackend, LoweredSegmentExec};
use refidem_ir::memory::{Layout, Memory};
use refidem_ir::program::Program;
use refidem_specsim::sweep::{SweepExec, SweepPlan};
use refidem_specsim::{initial_memory, simulate_program, ExecMode, ProgramReport, SimConfig};
use refidem_testkit::{generate, CAPACITY_LADDER};

const SUITE_SEEDS: u64 = 1024;

/// The compiled backends every program is differenced against the oracle.
const COMPILED_BACKENDS: [ExecBackend; 2] = [ExecBackend::Lowered, ExecBackend::Fused];

/// Bit-exact trace fingerprint: `(site, access, addr, value bits)` per
/// dynamic access.
type TraceKey = Vec<(u32, bool, u64, u64)>;

/// Runs one procedure sequentially on the given backend with tracing and
/// counting enabled; returns the final memory image, the trace fingerprint,
/// the per-site dynamic counts and the executed statement units.
fn run_sequential_traced(
    program: &Program,
    proc_index: usize,
    backend: ExecBackend,
) -> (Vec<u64>, TraceKey, DynCounts, usize) {
    let proc = &program.procedures[proc_index];
    let layout = Layout::new(&proc.vars);
    let mut memory = initial_memory(proc);
    let mut store = CountingStore::new(PlainStore::tracing(&mut memory));
    let steps = match backend {
        ExecBackend::Lowered => {
            let lowered = lower(&proc.vars, &layout, &proc.body);
            let mut exec = LoweredSegmentExec::new(&lowered, &[]);
            exec.run(&mut store, 200_000_000).expect("runs");
            exec.steps()
        }
        ExecBackend::Fused => {
            let fused = fuse(&lower(&proc.vars, &layout, &proc.body));
            let mut exec = LoweredSegmentExec::new(&fused, &[]);
            exec.run(&mut store, 200_000_000).expect("runs");
            exec.steps()
        }
        ExecBackend::TreeWalk => {
            let mut exec = SegmentExec::new(&proc.vars, &layout, &proc.body, &[]);
            exec.run(&mut store, 200_000_000).expect("runs");
            exec.steps()
        }
    };
    let trace = store
        .inner
        .trace
        .iter()
        .map(|e| {
            (
                e.site.0,
                e.access == refidem_ir::sites::AccessKind::Write,
                e.addr.0,
                e.value.to_bits(),
            )
        })
        .collect();
    let counts = store.counts.clone();
    let words: Vec<u64> = (0..layout.total_words())
        .map(|a| memory.load(refidem_ir::memory::Addr(a)).to_bits())
        .collect();
    (words, trace, counts, steps)
}

/// Zeroes the compilation-pipeline counters of a whole-program report —
/// the oracle never compiles while the compiled paths query their cache
/// (and the fused tier queries different keys than the plain tier), so
/// those are compared on their own terms.
fn without_cache_counters(report: &ProgramReport) -> ProgramReport {
    let mut r = report.clone();
    r.lowering_cache_hits = 0;
    r.lowering_cache_misses = 0;
    r.lowering_cache_evictions = 0;
    r.analysis_cache_hits = 0;
    r.analysis_cache_misses = 0;
    r.analysis_cache_evictions = 0;
    for region in &mut r.regions {
        region.lowering_cache_hits = 0;
        region.lowering_cache_misses = 0;
        region.lowering_cache_evictions = 0;
        region.analysis_cache_hits = 0;
        region.analysis_cache_misses = 0;
        region.analysis_cache_evictions = 0;
    }
    r
}

/// Asserts all three backends agree on sequential execution (memory bits,
/// trace, counts, step accounting) and on every whole-program engine run
/// across the capacity ladder under both HOSE and CASE (memory bits and
/// the full per-region statistics reports, cycles and the serial/parallel
/// split included). Every scheduled region of the program is exercised.
fn assert_backend_equivalence(what: &str, program: &Program) {
    // Sequential: trace-level equivalence of each compiled tier against
    // the tree-walking oracle.
    let (mem_t, trace_t, counts_t, steps_t) =
        run_sequential_traced(program, 0, ExecBackend::TreeWalk);
    for backend in COMPILED_BACKENDS {
        let (mem_b, trace_b, counts_b, steps_b) = run_sequential_traced(program, 0, backend);
        assert_eq!(
            steps_t, steps_b,
            "{what}: {backend:?}: statement units diverged"
        );
        assert_eq!(
            trace_t.len(),
            trace_b.len(),
            "{what}: {backend:?}: trace length diverged"
        );
        for (i, (a, b)) in trace_t.iter().zip(&trace_b).enumerate() {
            assert_eq!(a, b, "{what}: {backend:?}: trace event {i} diverged");
        }
        assert_eq!(
            counts_t, counts_b,
            "{what}: {backend:?}: dynamic counts diverged"
        );
        assert_eq!(
            mem_t, mem_b,
            "{what}: {backend:?}: sequential memory diverged"
        );
    }

    // Speculation engine: byte-exact memory and identical whole-program
    // reports at every capacity-ladder point, both execution models, both
    // compiled tiers. One fresh cache per program, shared between the
    // tiers: compile-once across the ladder (fused-tier entries carry
    // their own `LowerUnit` variants so the tiers never collide), nothing
    // retained for the process lifetime (the generated programs are
    // one-shot).
    let cache = refidem_ir::lowered::LoweredCache::fresh();
    let labeled = label_program(program, ProcId::from_index(0)).expect("labels");
    let max_queries = 2 * labeled.regions.len() as u64 + 1;
    for &capacity in &CAPACITY_LADDER {
        for mode in [ExecMode::Hose, ExecMode::Case] {
            let cfg_t = SimConfig::default().capacity(capacity).oracle();
            let out_t = simulate_program(program, &labeled, mode, &cfg_t);
            for backend in COMPILED_BACKENDS {
                let cfg_b = SimConfig::default()
                    .capacity(capacity)
                    .backend(backend)
                    .cache(cache.clone());
                let out_b = simulate_program(program, &labeled, mode, &cfg_b);
                match (&out_t, &out_b) {
                    (Ok(t), Ok(b)) => {
                        // The lowering-cache counters describe the
                        // compilation pipeline, not the simulated
                        // execution: the oracle never compiles (always
                        // 0/0) while a compiled run queries its cache once
                        // per serial span and region body. Check them on
                        // their own terms, then require the rest of the
                        // report to be identical.
                        assert_eq!(
                            (t.report.lowering_cache_hits, t.report.lowering_cache_misses),
                            (0, 0),
                            "{what}: {mode} @ capacity {capacity}: oracle touched the cache"
                        );
                        let b_queries =
                            b.report.lowering_cache_hits + b.report.lowering_cache_misses;
                        assert!(
                            b_queries <= max_queries,
                            "{what}: {backend:?} {mode} @ capacity {capacity}: run made \
                             {b_queries} cache queries for {} regions",
                            labeled.regions.len()
                        );
                        assert_eq!(
                            without_cache_counters(&t.report),
                            without_cache_counters(&b.report),
                            "{what}: {backend:?} {mode} @ capacity {capacity}: reports diverged"
                        );
                        let diffs = t.memory.diff(&b.memory, 8);
                        assert!(
                            diffs.is_empty(),
                            "{what}: {backend:?} {mode} @ capacity {capacity}: \
                             memory diverged: {diffs:?}"
                        );
                    }
                    (Err(et), Err(eb)) => assert_eq!(
                        et, eb,
                        "{what}: {backend:?} {mode} @ capacity {capacity}: errors diverged"
                    ),
                    (t, b) => panic!(
                        "{what}: {backend:?} {mode} @ capacity {capacity}: one backend \
                         failed: tree={t:?} compiled={b:?}"
                    ),
                }
            }
        }
    }
}

#[test]
fn all_generated_programs_execute_identically_on_all_backends() {
    let plan: SweepPlan<u64> = (0..SUITE_SEEDS)
        .map(|seed| (format!("seed {seed}"), seed))
        .collect();
    plan.run(&SweepExec::new(), |&seed| {
        let g = generate(seed);
        assert_backend_equivalence(&format!("seed {seed}"), &g.program);
    });
}

#[test]
fn all_named_benchmark_loops_execute_identically_on_all_backends() {
    let loops = all_named_loops();
    let plan: SweepPlan<&refidem_benchmarks::LoopBenchmark> =
        loops.iter().map(|b| (b.name.to_string(), b)).collect();
    plan.run(&SweepExec::new(), |bench| {
        assert_backend_equivalence(bench.name, &bench.program);
    });
}

#[test]
fn sequential_interpreter_backends_agree_via_public_api() {
    // The SeqInterp front door: default (fused) vs pinned-lowered vs
    // oracle constructors.
    for bench in all_named_loops() {
        let proc = &bench.program.procedures[bench.region.proc.index()];
        let layout = Layout::new(&proc.vars);
        let mut mem_fused = Memory::init_with(&layout, |a| (a.0 % 17) as f64);
        let mut mem_plain = mem_fused.clone();
        let mut mem_oracle = mem_fused.clone();
        let fused = SeqInterp::new()
            .run_procedure_counting(proc, &mut mem_fused)
            .expect("fused runs");
        let plain = SeqInterp::lowered()
            .run_procedure_counting(proc, &mut mem_plain)
            .expect("lowered runs");
        let oracle = SeqInterp::oracle()
            .run_procedure_counting(proc, &mut mem_oracle)
            .expect("oracle runs");
        assert_eq!(fused, oracle, "{}: fused counts diverged", bench.name);
        assert_eq!(plain, oracle, "{}: lowered counts diverged", bench.name);
        for (name, mem) in [("fused", &mem_fused), ("lowered", &mem_plain)] {
            let diffs = mem.diff(&mem_oracle, 8);
            assert!(
                diffs.is_empty(),
                "{}: {name} memory diverged: {diffs:?}",
                bench.name
            );
        }
    }
}

/// The fused tier is a pure execution-speed change: for every named
/// benchmark, mode and a capacity spread, its whole-program report must be
/// field-for-field identical to the plain lowered tier's — cycles,
/// violations, rollbacks, overflow stalls, occupancy, the serial/parallel
/// split — except for the lowering-cache counters, whose keys legitimately
/// differ between tiers.
#[test]
fn fused_tier_changes_no_report_field_but_cache_counters() {
    for bench in all_named_loops() {
        let labeled = label_program(&bench.program, ProcId::from_index(0)).expect("labels");
        for &capacity in &[1usize, 16, 256] {
            for mode in [ExecMode::Hose, ExecMode::Case] {
                let plain_cfg = SimConfig::default()
                    .capacity(capacity)
                    .backend(ExecBackend::Lowered)
                    .cache(refidem_ir::lowered::LoweredCache::fresh());
                let fused_cfg = SimConfig::default()
                    .capacity(capacity)
                    .backend(ExecBackend::Fused)
                    .cache(refidem_ir::lowered::LoweredCache::fresh());
                let plain = simulate_program(&bench.program, &labeled, mode, &plain_cfg)
                    .expect("lowered runs");
                let fused = simulate_program(&bench.program, &labeled, mode, &fused_cfg)
                    .expect("fused runs");
                assert_eq!(
                    without_cache_counters(&plain.report),
                    without_cache_counters(&fused.report),
                    "{}: {mode} @ capacity {capacity}: fused tier changed the report",
                    bench.name
                );
                let diffs = plain.memory.diff(&fused.memory, 8);
                assert!(
                    diffs.is_empty(),
                    "{}: {mode} @ capacity {capacity}: memory diverged: {diffs:?}",
                    bench.name
                );
            }
        }
    }
}

/// The fused tier under the real-thread runtime: every named benchmark's
/// final memory must be byte-identical to the oracle's sequential image,
/// excluding only region-private variables (dead at region exit and
/// legitimately living in per-segment storage under CASE, Lemma 2).
/// This is the configuration the nightly ThreadSanitizer job drives.
#[test]
fn fused_backend_under_threads_runtime_is_byte_exact() {
    use refidem_analysis::classify::VarClass;
    for bench in all_named_loops() {
        let labeled = label_program(&bench.program, ProcId::from_index(0)).expect("labels");
        let seq_cfg = SimConfig::default().oracle();
        let seq = refidem_specsim::run_program_sequential(&bench.program, &labeled, &seq_cfg)
            .expect("sequential runs");
        let proc = &bench.program.procedures[0];
        let layout = Layout::new(&proc.vars);
        let mut ignored: Vec<(u64, u64)> = Vec::new();
        for region in &labeled.regions {
            for (v, class) in region.analysis.classes.iter() {
                if class == VarClass::Private {
                    let base = layout.base(v).0;
                    ignored.push((base, base + proc.vars.kind(v).size() as u64));
                }
            }
        }
        for mode in [ExecMode::Hose, ExecMode::Case] {
            let cfg = SimConfig::default()
                .backend(ExecBackend::Fused)
                .threads()
                .cache(refidem_ir::lowered::LoweredCache::fresh());
            let out = simulate_program(&bench.program, &labeled, mode, &cfg).expect("threads run");
            let diffs: Vec<_> = seq
                .memory
                .diff(&out.memory, usize::MAX)
                .into_iter()
                .filter(|(a, _, _)| !ignored.iter().any(|(lo, hi)| a.0 >= *lo && a.0 < *hi))
                .take(8)
                .collect();
            assert!(
                diffs.is_empty(),
                "{}: {mode} under Threads diverged: {diffs:?}",
                bench.name
            );
        }
    }
}
