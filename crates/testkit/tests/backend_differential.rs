//! Lowered-vs-oracle backend differential suite.
//!
//! The lowered bytecode engine (`refidem_ir::lowered`) must be
//! *observationally identical* to the tree-walking interpreter, not merely
//! produce the same final memory: same access order (traces), same dynamic
//! counts, same statement-unit accounting, and — under the speculation
//! engine — the same violations, roll-backs, overflows and cycle counts at
//! every capacity point. This suite asserts exactly that across all 1024
//! generated testkit programs and every named benchmark loop, sharding
//! the corpus over the sweep executor (a failing seed's assertion panic
//! propagates out of the pool with the seed's identity in the message).

use refidem_benchmarks::all_named_loops;
use refidem_core::label::label_program;
use refidem_ir::exec::{CountingStore, DynCounts, PlainStore, SegmentExec, SeqInterp};
use refidem_ir::ids::ProcId;
use refidem_ir::lowered::{lower, ExecBackend, LoweredSegmentExec};
use refidem_ir::memory::{Layout, Memory};
use refidem_ir::program::Program;
use refidem_specsim::sweep::{SweepExec, SweepPlan};
use refidem_specsim::{initial_memory, simulate_program, ExecMode, ProgramReport, SimConfig};
use refidem_testkit::{generate, CAPACITY_LADDER};

const SUITE_SEEDS: u64 = 1024;

/// Bit-exact trace fingerprint: `(site, access, addr, value bits)` per
/// dynamic access.
type TraceKey = Vec<(u32, bool, u64, u64)>;

/// Runs one procedure sequentially on the given backend with tracing and
/// counting enabled; returns the final memory image, the trace fingerprint,
/// the per-site dynamic counts and the executed statement units.
fn run_sequential_traced(
    program: &Program,
    proc_index: usize,
    backend: ExecBackend,
) -> (Vec<u64>, TraceKey, DynCounts, usize) {
    let proc = &program.procedures[proc_index];
    let layout = Layout::new(&proc.vars);
    let mut memory = initial_memory(proc);
    let mut store = CountingStore::new(PlainStore::tracing(&mut memory));
    let steps = match backend {
        ExecBackend::Lowered => {
            let lowered = lower(&proc.vars, &layout, &proc.body);
            let mut exec = LoweredSegmentExec::new(&lowered, &[]);
            exec.run(&mut store, 200_000_000).expect("runs");
            exec.steps()
        }
        ExecBackend::TreeWalk => {
            let mut exec = SegmentExec::new(&proc.vars, &layout, &proc.body, &[]);
            exec.run(&mut store, 200_000_000).expect("runs");
            exec.steps()
        }
    };
    let trace = store
        .inner
        .trace
        .iter()
        .map(|e| {
            (
                e.site.0,
                e.access == refidem_ir::sites::AccessKind::Write,
                e.addr.0,
                e.value.to_bits(),
            )
        })
        .collect();
    let counts = store.counts.clone();
    let words: Vec<u64> = (0..layout.total_words())
        .map(|a| memory.load(refidem_ir::memory::Addr(a)).to_bits())
        .collect();
    (words, trace, counts, steps)
}

/// Zeroes the compilation-pipeline counters of a whole-program report —
/// the oracle never compiles while the lowered path queries its cache, so
/// those are compared on their own terms.
fn without_cache_counters(report: &ProgramReport) -> ProgramReport {
    let mut r = report.clone();
    r.lowering_cache_hits = 0;
    r.lowering_cache_misses = 0;
    r.lowering_cache_evictions = 0;
    for region in &mut r.regions {
        region.lowering_cache_hits = 0;
        region.lowering_cache_misses = 0;
        region.lowering_cache_evictions = 0;
    }
    r
}

/// Asserts the two backends agree on sequential execution (memory bits,
/// trace, counts, step accounting) and on every whole-program engine run
/// across the capacity ladder under both HOSE and CASE (memory bits and
/// the full per-region statistics reports, cycles and the serial/parallel
/// split included). Every scheduled region of the program is exercised.
fn assert_backend_equivalence(what: &str, program: &Program) {
    // Sequential: trace-level equivalence.
    let (mem_t, trace_t, counts_t, steps_t) =
        run_sequential_traced(program, 0, ExecBackend::TreeWalk);
    let (mem_l, trace_l, counts_l, steps_l) =
        run_sequential_traced(program, 0, ExecBackend::Lowered);
    assert_eq!(steps_t, steps_l, "{what}: statement units diverged");
    assert_eq!(
        trace_t.len(),
        trace_l.len(),
        "{what}: trace length diverged"
    );
    for (i, (a, b)) in trace_t.iter().zip(&trace_l).enumerate() {
        assert_eq!(a, b, "{what}: trace event {i} diverged");
    }
    assert_eq!(counts_t, counts_l, "{what}: dynamic counts diverged");
    assert_eq!(mem_t, mem_l, "{what}: sequential memory diverged");

    // Speculation engine: byte-exact memory and identical whole-program
    // reports at every capacity-ladder point, both execution models. One
    // fresh cache per program: compile-once across the ladder, nothing
    // retained for the process lifetime (the generated programs are
    // one-shot).
    let cache = refidem_ir::lowered::LoweredCache::fresh();
    let labeled = label_program(program, ProcId::from_index(0)).expect("labels");
    let max_queries = 2 * labeled.regions.len() as u64 + 1;
    for &capacity in &CAPACITY_LADDER {
        for mode in [ExecMode::Hose, ExecMode::Case] {
            let cfg_t = SimConfig::default().capacity(capacity).oracle();
            let cfg_l = SimConfig::default()
                .capacity(capacity)
                .backend(ExecBackend::Lowered)
                .cache(cache.clone());
            let out_t = simulate_program(program, &labeled, mode, &cfg_t);
            let out_l = simulate_program(program, &labeled, mode, &cfg_l);
            match (out_t, out_l) {
                (Ok(t), Ok(l)) => {
                    // The lowering-cache counters describe the compilation
                    // pipeline, not the simulated execution: the oracle
                    // never compiles (always 0/0) while the lowered run
                    // queries its cache once per serial span and region
                    // body. Check them on their own terms, then require
                    // the rest of the report to be identical.
                    assert_eq!(
                        (t.report.lowering_cache_hits, t.report.lowering_cache_misses),
                        (0, 0),
                        "{what}: {mode} @ capacity {capacity}: oracle touched the cache"
                    );
                    let l_queries = l.report.lowering_cache_hits + l.report.lowering_cache_misses;
                    assert!(
                        l_queries <= max_queries,
                        "{what}: {mode} @ capacity {capacity}: lowered run made \
                         {l_queries} cache queries for {} regions",
                        labeled.regions.len()
                    );
                    assert_eq!(
                        without_cache_counters(&t.report),
                        without_cache_counters(&l.report),
                        "{what}: {mode} @ capacity {capacity}: reports diverged"
                    );
                    let diffs = t.memory.diff(&l.memory, 8);
                    assert!(
                        diffs.is_empty(),
                        "{what}: {mode} @ capacity {capacity}: memory diverged: {diffs:?}"
                    );
                }
                (Err(et), Err(el)) => assert_eq!(
                    et, el,
                    "{what}: {mode} @ capacity {capacity}: errors diverged"
                ),
                (t, l) => panic!(
                    "{what}: {mode} @ capacity {capacity}: one backend failed: \
                     tree={t:?} lowered={l:?}"
                ),
            }
        }
    }
}

#[test]
fn all_generated_programs_execute_identically_on_both_backends() {
    let plan: SweepPlan<u64> = (0..SUITE_SEEDS)
        .map(|seed| (format!("seed {seed}"), seed))
        .collect();
    plan.run(&SweepExec::new(), |&seed| {
        let g = generate(seed);
        assert_backend_equivalence(&format!("seed {seed}"), &g.program);
    });
}

#[test]
fn all_named_benchmark_loops_execute_identically_on_both_backends() {
    let loops = all_named_loops();
    let plan: SweepPlan<&refidem_benchmarks::LoopBenchmark> =
        loops.iter().map(|b| (b.name.to_string(), b)).collect();
    plan.run(&SweepExec::new(), |bench| {
        assert_backend_equivalence(bench.name, &bench.program);
    });
}

#[test]
fn sequential_interpreter_backends_agree_via_public_api() {
    // The SeqInterp front door: default (lowered) vs oracle constructor.
    for bench in all_named_loops() {
        let proc = &bench.program.procedures[bench.region.proc.index()];
        let layout = Layout::new(&proc.vars);
        let mut mem_fast = Memory::init_with(&layout, |a| (a.0 % 17) as f64);
        let mut mem_oracle = mem_fast.clone();
        let fast = SeqInterp::new()
            .run_procedure_counting(proc, &mut mem_fast)
            .expect("lowered runs");
        let oracle = SeqInterp::oracle()
            .run_procedure_counting(proc, &mut mem_oracle)
            .expect("oracle runs");
        assert_eq!(fast, oracle, "{}: counts diverged", bench.name);
        let diffs = mem_fast.diff(&mem_oracle, 8);
        assert!(
            diffs.is_empty(),
            "{}: memory diverged: {diffs:?}",
            bench.name
        );
    }
}
