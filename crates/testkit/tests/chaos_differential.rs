//! The chaos campaign: the 1024-program corpus under 1024 seeded fault
//! schedules — forced violations, spurious squashes, forced overflows,
//! injected worker panics/errors, tight degradation budgets — on both
//! runtimes. Every run must end byte-exact against the sequential oracle
//! (possibly via the recorded serial fallback) or in the clean structured
//! error its schedule injected; anything else fails the suite.
//!
//! Scheduler perturbation is off by default (it stretches wall-clock
//! time); set `REFIDEM_CHAOS_PERTURB=1` to inject yields at the
//! mask-probe/commit/drain edges — the nightly TSan job runs this suite
//! that way.

use refidem_benchmarks::all_benchmarks;
use refidem_specsim::{FaultPlan, Governor, SpecRuntime};
use refidem_testkit::{check_program, run_chaos_suite, run_suite, DiffConfig, SweepExec};

/// The whole corpus — and, since program seed `k` pairs with fault
/// schedule `k`, the number of distinct fault schedules exercised.
const SUITE_SEEDS: u64 = 1024;

/// Same trimmed ladder as the real-thread differential suite: overflow
/// serialization (1), mixed (4), no overflow (256).
const CAPACITIES: [usize; 3] = [1, 4, 256];

fn chaos_base(runtime: SpecRuntime, processors: usize) -> DiffConfig {
    DiffConfig {
        processors,
        runtime,
        capacities: CAPACITIES.to_vec(),
        ..Default::default()
    }
}

#[test]
fn chaos_campaign_on_the_simulated_runtime_is_clean() {
    let base = chaos_base(SpecRuntime::Simulated, 4);
    let report = run_chaos_suite(0..SUITE_SEEDS, &base, &SweepExec::new());
    assert_eq!(report.programs as u64, SUITE_SEEDS);
    assert!(
        report.failures.is_empty(),
        "{} chaos failures; first: seed {}: {}",
        report.failures.len(),
        report.failures[0].0,
        report.failures[0].1
    );
    // The campaign must actually exercise the machinery it claims to:
    // injected misspeculation, scheduled terminal failures, and budget
    // exhaustion with serial fallback all have to occur somewhere in
    // 1024 schedules.
    assert!(
        report.stats.violations > 0,
        "some schedule must force violations"
    );
    assert!(
        report.stats.injected_failures > 0,
        "some schedule must end in its injected panic/error"
    );
    assert!(
        report.stats.degraded_regions > 0,
        "some schedule must exhaust a budget and degrade to serial"
    );
}

#[test]
fn chaos_campaign_on_real_threads_at_every_thread_count() {
    for threads in [1usize, 2, 8] {
        let base = chaos_base(SpecRuntime::Threads, threads);
        let report = run_chaos_suite(0..SUITE_SEEDS, &base, &SweepExec::new());
        assert_eq!(report.programs as u64, SUITE_SEEDS);
        assert!(
            report.failures.is_empty(),
            "{threads} thread(s): {} chaos failures; first: seed {}: {}",
            report.failures.len(),
            report.failures[0].0,
            report.failures[0].1
        );
    }
}

#[test]
fn full_misspeculation_with_a_tiny_budget_degrades_and_stays_exact() {
    // 100% injected misspeculation: every non-head attempt is squashed
    // until the restart budget (2) trips and the region re-executes
    // sequentially. Byte-exactness must survive on both runtimes.
    for runtime in [SpecRuntime::Simulated, SpecRuntime::Threads] {
        let base = DiffConfig {
            processors: 4,
            runtime,
            capacities: vec![4, 256],
            faults: FaultPlan::seeded(7).violation_rate(1000),
            governor: Governor::default().restart_budget(2),
            ..Default::default()
        };
        let report = run_suite(0..32, &base);
        assert!(
            report.failures.is_empty(),
            "{runtime:?}: first failure: seed {}: {}",
            report.failures[0].0,
            report.failures[0].1
        );
        if runtime == SpecRuntime::Simulated {
            // The simulated engine is deterministic, so the degradations
            // are guaranteed; under real threads a region can finish
            // before a peer ever claims a non-head segment.
            assert!(
                report.stats.degraded_regions > 0,
                "full misspeculation must trip the restart budget somewhere"
            );
        }
    }
}

#[test]
fn restart_budget_zero_keeps_every_benchmark_byte_exact() {
    // The acceptance bar: with a restart budget of zero, every benchmark
    // still completes — regions that roll back even once fall back to the
    // recorded serial path — and the output bits never change.
    let benchmarks = all_benchmarks();
    assert_eq!(
        benchmarks.len(),
        14,
        "the full SPEC/Perfect suite plus IRREG"
    );
    let cfg = DiffConfig {
        capacities: vec![4],
        governor: Governor::default().restart_budget(0),
        ..Default::default()
    };
    let mut degraded = 0usize;
    for bench in &benchmarks {
        let stats = check_program(&bench.program, &cfg)
            .unwrap_or_else(|f| panic!("{} under restart budget 0: {f}", bench.name));
        degraded += stats.degraded_regions;
    }
    assert!(
        degraded > 0,
        "at capacity 4 some benchmark region must roll back and degrade"
    );
}

#[test]
fn chaos_campaign_shards_identically_at_one_and_four_workers() {
    // The simulated engine plus pure-function fault decisions are fully
    // deterministic, so the whole chaos report — stats, degradations,
    // injected failures — must be identical at any outer worker count.
    let base = chaos_base(SpecRuntime::Simulated, 4);
    let one = run_chaos_suite(0..64, &base, &SweepExec::new().jobs(1));
    let four = run_chaos_suite(0..64, &base, &SweepExec::new().jobs(4));
    assert_eq!(one.programs, four.programs);
    assert_eq!(one.distinct, four.distinct);
    assert_eq!(
        one.stats, four.stats,
        "sharding must not change the outcome"
    );
    assert!(one.failures.is_empty() && four.failures.is_empty());
}
