//! The headline differential suite: a thousand-plus seeded programs, each
//! run under HOSE and CASE across the whole capacity ladder and compared
//! byte-exactly against the sequential interpreter. The batch is sharded
//! over the sweep executor (`REFIDEM_JOBS` controls the worker count; CI
//! runs the suite at both 1 and 4 workers).

use refidem_testkit::{
    check_generated, generate, reproducer, run_suite, shrink, DiffConfig, Tamper, CAPACITY_LADDER,
};

/// Acceptance bar: at least this many distinct programs per run.
const SUITE_SEEDS: u64 = 1024;

#[test]
fn thousand_plus_generated_programs_have_zero_divergences() {
    let report = run_suite(0..SUITE_SEEDS, &DiffConfig::default());
    assert_eq!(report.programs as u64, SUITE_SEEDS);
    assert!(
        report.distinct >= 1000,
        "need >= 1000 distinct programs, generated only {} distinct of {}",
        report.distinct,
        report.programs
    );
    // Zero sequential-vs-HOSE and sequential-vs-CASE divergences across the
    // full capacity ladder. On failure, shrink the first offender and print
    // a ready-to-paste reproducer.
    if let Some((seed, failure)) = report.failures.first() {
        let g = generate(*seed);
        let shrunk = shrink(&g.spec, &DiffConfig::default(), 2000);
        panic!(
            "seed {seed} failed: {failure}\nminimized ({} -> {} stmts):\n{}",
            shrunk.stmts_before,
            shrunk.stmts_after,
            reproducer(&shrunk.spec)
        );
    }
    // The suite exercised every rung of the ladder under both modes.
    assert_eq!(
        report.stats.runs,
        report.programs * CAPACITY_LADDER.len() * 2
    );
    // The shape space actually stressed the simulator: overflows must have
    // occurred (capacity 1 guarantees them on multi-address segments).
    assert!(
        report.stats.overflow_stalls > 0,
        "no overflow was ever observed"
    );
    assert!(report.stats.segments > 0);
    assert!(report.stats.max_peak_occupancy <= 256);
}

#[test]
fn generator_distribution_covers_irregular_shapes() {
    // The irregular-reference corpus push: across the suite's seed range a
    // solid fraction of programs must carry indirection arrays and WHILE
    // regions, while every program stays distinct (the listing-based
    // distinctness bar of the headline suite must not regress from the new
    // shapes collapsing programs together).
    let mut listings = std::collections::BTreeSet::new();
    let mut irregular = 0usize;
    let mut with_while = 0usize;
    for seed in 0..SUITE_SEEDS {
        let g = generate(seed);
        listings.insert(refidem_ir::pretty::program_to_string(&g.program));
        if g.spec.has_irregular() {
            irregular += 1;
        }
        if g.spec.has_while() {
            with_while += 1;
        }
    }
    assert!(
        listings.len() >= 1000,
        "need >= 1000 distinct programs, got {}",
        listings.len()
    );
    let quarter = SUITE_SEEDS as usize / 4;
    assert!(
        irregular >= quarter,
        "only {irregular}/{SUITE_SEEDS} programs have irregular references (need >= {quarter})"
    );
    let tenth = SUITE_SEEDS as usize / 10;
    assert!(
        with_while >= tenth,
        "only {with_while}/{SUITE_SEEDS} programs have a WHILE region (need >= {tenth})"
    );
}

#[test]
fn suite_is_deterministic_across_runs() {
    let a = run_suite(1000..1010, &DiffConfig::default());
    let b = run_suite(1000..1010, &DiffConfig::default());
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.distinct, b.distinct);
    assert_eq!(a.failures.len(), b.failures.len());
}

#[test]
fn tampered_labels_are_caught_somewhere_in_the_suite() {
    // Promoting speculative reads to idempotent is unsound; across a batch
    // of generated programs at least one must carry a cross-segment flow
    // dependence whose mislabeled sink diverges under CASE.
    let cfg = DiffConfig {
        tamper: Some(Tamper::PromoteSpeculativeReads),
        ..DiffConfig::case_only()
    };
    let mut caught = 0;
    let mut tampered_any = false;
    for seed in 0..40 {
        let g = generate(seed);
        match check_generated(&g, &cfg) {
            Ok(stats) => tampered_any |= stats.tampered_labels > 0,
            Err(_) => caught += 1,
        }
    }
    assert!(
        tampered_any || caught > 0,
        "tampering never changed a label"
    );
    assert!(
        caught >= 3,
        "corrupted labelings must be detected (caught only {caught}/40)"
    );
}
