//! The irregular slice of the corpus, on its own: every generated program
//! with indirection arrays or a WHILE region runs the full differential
//! check, the chaos campaign re-runs the slice on both runtimes, a
//! duplicate-index scatter must force real violations, and a seeded
//! irregular failure must minimize to a handful of statements. CI runs
//! this file as the `irregular`-tagged step of the differential and chaos
//! jobs (filter: `cargo test --test irregular_differential irregular`).

use refidem_specsim::SpecRuntime;
use refidem_testkit::{
    chaos_config, check_generated, check_spec, generate, reproducer, shrink, DiffConfig, DiffStats,
    GeneratedProgram, ProgramSpec, Tamper,
};

/// Seed range the irregular slice is drawn from. Roughly a third of these
/// seeds carry indirection arrays or WHILE regions (the generator
/// distribution test pins the exact floors), so the slice is a few hundred
/// programs — small enough to re-run under chaos on both runtimes.
const SLICE_SEEDS: u64 = 512;

fn irregular_slice(seeds: u64) -> Vec<GeneratedProgram> {
    (0..seeds)
        .map(generate)
        .filter(|g| g.spec.has_irregular() || g.spec.has_while())
        .collect()
}

#[test]
fn irregular_slice_differential_is_byte_exact() {
    let slice = irregular_slice(SLICE_SEEDS);
    assert!(
        slice.len() >= SLICE_SEEDS as usize / 4,
        "the slice must be a solid fraction of the corpus, got {} of {}",
        slice.len(),
        SLICE_SEEDS
    );
    let cfg = DiffConfig::default();
    let mut stats = DiffStats::default();
    for g in &slice {
        match check_generated(g, &cfg) {
            Ok(s) => stats.merge(&s),
            Err(f) => panic!("seed {} diverged: {f}", g.seed),
        }
    }
    // The slice genuinely stresses speculation: runtime conflicts from
    // duplicate-laden index patterns must show up as violations somewhere,
    // and capacity 1 guarantees overflow stalls.
    assert!(
        stats.violations > 0,
        "no irregular program ever raised a violation"
    );
    assert!(stats.overflow_stalls > 0);
}

#[test]
fn irregular_slice_survives_chaos_on_both_runtimes() {
    // The chaos contract on the irregular slice: byte-exact against the
    // sequential oracle (possibly via serial fallback) or the clean
    // structured error the schedule injected — on the simulated engine and
    // on real threads at 1, 2 and 8 workers.
    let slice = irregular_slice(192);
    assert!(!slice.is_empty());
    let runtimes = [
        (SpecRuntime::Simulated, vec![4usize]),
        (SpecRuntime::Threads, vec![1, 2, 8]),
    ];
    for (runtime, processor_counts) in runtimes {
        for processors in processor_counts {
            let base = DiffConfig {
                processors,
                runtime,
                capacities: vec![1, 4, 64],
                ..Default::default()
            };
            for g in &slice {
                let cfg = chaos_config(&base, g.seed);
                if let Err(f) = check_generated(g, &cfg) {
                    panic!(
                        "{runtime:?} x{processors}: chaos seed {} failed: {f}",
                        g.seed
                    );
                }
            }
        }
    }
}

/// The duplicate-index scatter kernel: `a0(x0(k)) = a0(x0(k)) + 1` with
/// `x0` clamped low, so every segment past the clamp point collides on one
/// element — a genuine runtime cross-segment flow the analyzer cannot see.
fn duplicate_scatter_spec() -> ProgramSpec {
    use refidem_testkit::gen::{
        AssignSpec, IndexPattern, RegionPart, StmtSpec, TargetSpec, TermOp, TermSpec,
    };
    let scatter = StmtSpec::Assign(AssignSpec {
        target: TargetSpec::ArrInd { arr: 0, idx: 0 },
        terms: vec![
            (TermOp::Add, TermSpec::ArrInd { arr: 0, idx: 0 }),
            (TermOp::Add, TermSpec::Const(1)),
        ],
    });
    ProgramSpec {
        arrays: 1,
        scalars: 0,
        serial: vec![vec![], vec![]],
        regions: vec![RegionPart {
            outer_lo: 1,
            outer_trips: 12,
            while_shape: None,
            body: vec![scatter],
        }],
        index_arrays: vec![IndexPattern::ClampLow(3)],
        live_out_arrays: vec![0],
        live_out_scalars: vec![],
    }
}

#[test]
fn duplicate_index_scatter_forces_irregular_violations_and_stays_exact() {
    // With no injected faults at all, the colliding addresses must raise
    // real dependence violations at some ladder point — and the rollback
    // machinery must still land byte-exact on every rung.
    let spec = duplicate_scatter_spec();
    let stats = check_spec(&spec, &DiffConfig::default())
        .unwrap_or_else(|f| panic!("duplicate-index scatter diverged: {f}"));
    assert!(
        stats.violations >= 1,
        "the colliding scatter must be caught by a violation, saw {}",
        stats.violations
    );
    assert!(stats.rollbacks >= 1, "a violation implies a rollback");
    // And under a chaotic fault schedule on top of the real conflicts the
    // contract still holds.
    let chaotic = chaos_config(&DiffConfig::default(), 11);
    check_spec(&spec, &chaotic).unwrap_or_else(|f| panic!("scatter under chaos diverged: {f}"));
}

#[test]
fn seeded_irregular_failure_minimizes_to_a_small_irregular_reproducer() {
    // Satellite regression: take a *generated* irregular program, corrupt
    // its labels (promote speculative reads to idempotent), find a seed
    // the corruption actually breaks, and demand the shrinker reduce it to
    // a reproducer of at most six statements.
    let cfg = DiffConfig {
        tamper: Some(Tamper::PromoteSpeculativeReads),
        ..DiffConfig::case_only()
    };
    let victim = (0..SLICE_SEEDS)
        .map(generate)
        .find(|g| {
            (g.spec.has_irregular() || g.spec.has_while()) && check_generated(g, &cfg).is_err()
        })
        .expect("some irregular seed must diverge under corrupted labels");
    let result = shrink(&victim.spec, &cfg, 4000);
    assert!(
        result.stmts_after <= 6,
        "seed {}: expected a <= 6-statement reproducer, kept {} of {}",
        victim.seed,
        result.stmts_after,
        result.stmts_before
    );
    assert!(
        check_spec(&result.spec, &cfg).is_err(),
        "the minimized spec must still fail"
    );
    assert!(
        check_spec(&result.spec, &DiffConfig::default()).is_ok(),
        "the untampered minimized spec must be clean"
    );
    // The reproducer must be emittable (it is what lands in a bug report).
    assert!(reproducer(&result.spec).contains("ProcBuilder::new"));
}
