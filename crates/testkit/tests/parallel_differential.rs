//! The real-thread differential suite: the same 1024-program corpus the
//! simulated engine is validated on, executed by `specsim::parallel` —
//! every speculative segment on a real OS thread — at several thread
//! counts, and compared byte-exactly against the sequential interpreter.
//!
//! The batch shards over the sweep executor exactly like the simulated
//! suite (`REFIDEM_JOBS` controls the outer worker count; CI runs at both
//! 1 and 4 workers), so the *outer* parallelism (programs) and the *inner*
//! parallelism (segment threads) compose — the configuration that defeated
//! the old thread-local scratch pool and that the dependence-mask protocol
//! must survive.

use refidem_core::label::label_program;
use refidem_ir::ids::ProcId;
use refidem_specsim::{simulate_program, ExecMode, FaultPlan, SimConfig, SimError, SpecRuntime};
use refidem_testkit::{
    generate, reproducer, run_suite, run_suite_with, shrink, DiffConfig, SweepExec,
};

/// The whole corpus, as in the simulated differential suite.
const SUITE_SEEDS: u64 = 1024;

/// Segment-thread counts the corpus is exercised at: degenerate (1),
/// minimal real concurrency (2), and more threads than this container has
/// cores (8) — oversubscription shakes out spin/yield bugs.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// A trimmed capacity ladder: 1 forces overflow serialization on nearly
/// every program, 4 mixes overflow with speculation, 256 exceeds every
/// generated working set. (The full 5-rung ladder stays on the simulated
/// suite; three rungs keep this suite's real-thread spawn count sane.)
const CAPACITIES: [usize; 3] = [1, 4, 256];

fn threads_config(threads: usize) -> DiffConfig {
    DiffConfig {
        processors: threads,
        runtime: SpecRuntime::Threads,
        capacities: CAPACITIES.to_vec(),
        ..Default::default()
    }
}

#[test]
fn corpus_is_byte_exact_on_real_threads_at_every_thread_count() {
    for threads in THREAD_COUNTS {
        let cfg = threads_config(threads);
        let report = run_suite(0..SUITE_SEEDS, &cfg);
        assert_eq!(report.programs as u64, SUITE_SEEDS);
        // On failure, shrink the first offender (the shrinker re-checks
        // candidates under the same real-thread config) and print a
        // ready-to-paste reproducer.
        if let Some((seed, failure)) = report.failures.first() {
            let g = generate(*seed);
            let shrunk = shrink(&g.spec, &cfg, 2000);
            panic!(
                "seed {seed} at {threads} segment thread(s) failed: {failure}\n\
                 minimized ({} -> {} stmts):\n{}",
                shrunk.stmts_before,
                shrunk.stmts_after,
                reproducer(&shrunk.spec)
            );
        }
        assert_eq!(
            report.stats.runs,
            report.programs * CAPACITIES.len() * 2,
            "every program ran the full (capacity x mode) ladder"
        );
        assert!(report.stats.segments > 0);
        // check_point already enforced the per-region invariants (peak
        // within capacity, commits == segments, restarts paid for by
        // rollbacks + stalls, zero simulated cycles); the aggregates only
        // sanity-check the shape space.
        assert!(report.stats.max_peak_occupancy <= 256);
        if threads == 1 {
            assert_eq!(
                report.stats.violations, 0,
                "one segment thread cannot conflict with itself"
            );
            assert_eq!(report.stats.rollbacks, 0);
        }
    }
}

#[test]
fn suite_shards_cleanly_at_one_and_four_outer_workers() {
    // Outer batch workers x inner segment threads: the nesting that
    // defeated thread-local pooling. Violation/rollback tallies are
    // interleaving-dependent under real threads, so (unlike the simulated
    // suite) only the *checked* properties — byte-exactness and the
    // report invariants — are asserted, not stat equality.
    let cfg = threads_config(8);
    for jobs in [1, 4] {
        let report = run_suite_with(0..128, &cfg, &SweepExec::new().jobs(jobs));
        assert_eq!(report.programs, 128);
        assert!(
            report.failures.is_empty(),
            "jobs={jobs}: first failure: {:?}",
            report.failures.first()
        );
    }
}

#[test]
fn a_segment_thread_panic_mid_region_surfaces_with_identity() {
    // A 32-segment recurrence region; inject a panic into segment 2 and
    // assert the runtime returns it as a *typed* error whose rendering
    // still carries the thread/segment identity (the pre-FaultPlan shim
    // used to re-raise the panic; the identity contract is unchanged).
    use refidem_ir::build::{ac, add, av, ProcBuilder};
    let mut b = ProcBuilder::new("main");
    let a = b.array("a", &[40]);
    let bb = b.array("b", &[40]);
    let k = b.index("k");
    b.live_out(&[a]);
    let rhs = add(
        b.load_elem(a, vec![av(k) - ac(1)]),
        b.load_elem(bb, vec![av(k)]),
    );
    let s = b.assign_elem(a, vec![av(k)], rhs);
    let region = b.do_loop_labeled("REC", k, ac(2), ac(33), vec![s]);
    let mut program = refidem_ir::program::Program::new("faulty");
    program.add_procedure(b.build(vec![region]));

    let labeled = label_program(&program, ProcId::from_index(0)).expect("labels");
    let cfg = SimConfig::default()
        .processors(4)
        .threads()
        .faults(FaultPlan::seeded(0).panic_at(2));
    let err = simulate_program(&program, &labeled, ExecMode::Hose, &cfg)
        .expect_err("the injected fault must propagate");
    match &err {
        SimError::WorkerPanic { segment, .. } => {
            assert_eq!(*segment, Some(2), "the panicking segment is identified")
        }
        other => panic!("expected a typed worker panic, got {other:?}"),
    }
    let message = err.to_string();
    assert!(
        message.contains("segment thread"),
        "rendering names the worker: {message}"
    );
    assert!(
        message.contains("segment 2"),
        "rendering names the segment: {message}"
    );
    assert!(
        message.contains("injected segment fault"),
        "rendering carries the original message: {message}"
    );
}
