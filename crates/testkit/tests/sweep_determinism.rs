//! Determinism regression: the same sweep plan and the same differential
//! batch must produce identical output at any worker count — the ordered
//! merge is what makes sharding transparent. Cache hit/miss counters are
//! the one exception (compile races make them scheduling-dependent), so
//! they are compared on their own terms, as in `backend_differential`.

use refidem_benchmarks::suite::{fpppp, mgrid};
use refidem_core::label::label_program_region;
use refidem_specsim::sweep::{ladder_plan, SweepExec};
use refidem_specsim::{simulate_region, ExecMode, LoweredCache, SimConfig, SimReport};
use refidem_testkit::{run_suite_with, DiffConfig};

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn differential_batch_merges_identically_at_any_worker_count() {
    let cfg = DiffConfig::default();
    let reports: Vec<_> = WORKER_COUNTS
        .iter()
        .map(|&jobs| run_suite_with(0..64, &cfg, &SweepExec::new().jobs(jobs)))
        .collect();
    let baseline = &reports[0];
    assert_eq!(baseline.programs, 64);
    assert!(baseline.failures.is_empty(), "{:?}", baseline.failures);
    for (i, report) in reports.iter().enumerate().skip(1) {
        let jobs = WORKER_COUNTS[i];
        assert_eq!(
            baseline.stats, report.stats,
            "merged DiffStats diverged at jobs = {jobs}"
        );
        assert_eq!(
            baseline.distinct, report.distinct,
            "distinct count diverged at jobs = {jobs}"
        );
        assert_eq!(
            baseline.failures.len(),
            report.failures.len(),
            "failure count diverged at jobs = {jobs}"
        );
    }
}

/// Zeroes the compilation-pipeline counters — the only [`SimReport`]
/// fields whose values depend on cross-thread scheduling.
fn without_cache_counters(report: &SimReport) -> SimReport {
    let mut r = report.clone();
    r.lowering_cache_hits = 0;
    r.lowering_cache_misses = 0;
    r.lowering_cache_evictions = 0;
    r.analysis_cache_hits = 0;
    r.analysis_cache_misses = 0;
    r.analysis_cache_evictions = 0;
    r
}

#[test]
fn ladder_sweep_reports_are_identical_at_any_worker_count() {
    let benches = [fpppp::twldrv_do100(), mgrid::resid_do600()];
    for bench in &benches {
        let labeled = label_program_region(&bench.program, &bench.region).expect("analyzes");
        let mut baseline: Option<Vec<SimReport>> = None;
        for &jobs in &WORKER_COUNTS {
            // A fresh cache per worker-count run: every run pays the same
            // compile pattern and shares nothing with the previous one.
            let base = SimConfig::default().cache(LoweredCache::fresh());
            let plan = ladder_plan(&base, &[1, 4, 16, 256], &[ExecMode::Hose, ExecMode::Case]);
            let reports = plan.run(&SweepExec::new().jobs(jobs), |(cfg, mode)| {
                let out = simulate_region(&bench.program, &labeled, *mode, cfg).expect("simulates");
                // Cache counters on their own terms: every lowered run
                // makes between one and three queries (prologue, region
                // body, epilogue), hit or miss.
                let queries = out.report.lowering_cache_hits + out.report.lowering_cache_misses;
                assert!(
                    (1..=3).contains(&queries),
                    "{}: {queries} cache queries at jobs = {jobs}",
                    bench.name
                );
                without_cache_counters(&out.report)
            });
            match &baseline {
                None => baseline = Some(reports),
                Some(expected) => assert_eq!(
                    expected, &reports,
                    "{}: ladder reports diverged at jobs = {jobs}",
                    bench.name
                ),
            }
        }
    }
}
