//! Regression test: a WHILE region's continuation condition keeps the
//! watched variable live.
//!
//! Shrunk from differential seed 60. Region R0 writes `a1`; region R1 is a
//! WHILE region whose condition reads `a1(k+8)` but whose *body* never reads
//! `a1` at those addresses. Before the fix, the liveness/summary walkers
//! ignored `while_cond`, so `a1` looked dead after R0, was classified
//! Private there, and R0's writes never reached main memory — R1 then
//! evaluated its termination condition against stale initial values and CASE
//! diverged from the sequential run at capacity 1.

use refidem_core::label::Label;
use refidem_ir::affine::AffineExpr;
use refidem_ir::build::{ac, av, cmp, num, ProcBuilder};
use refidem_ir::expr::CmpOp;
use refidem_ir::ids::ProcId;
use refidem_ir::program::Program;
use refidem_ir::sites::AccessKind;
use refidem_testkit::diff::{check_program, DiffConfig};

fn repro_program() -> Program {
    let mut b = ProcBuilder::new("repro");
    let a0 = b.array("a0", &[7]);
    let a1 = b.array("a1", &[15]);
    let a2 = b.array("a2", &[1]);
    let s0 = b.scalar("s0");
    let s1 = b.scalar("s1");
    let k = b.index("k");
    let _j = b.index("j");
    b.live_out(&[a0, a2, s0, s1]);
    let st0 = {
        let rhs = num(0.5);
        b.assign_elem(a1, vec![av(k) + ac(8)], rhs)
    };
    let st1 = {
        let rhs = num(0.5);
        b.assign_elem(a1, vec![AffineExpr::scaled_var(k, 2) + ac(8)], rhs)
    };
    let r0 = b.do_loop_labeled("R0", k, ac(1), ac(2), vec![st0, st1]);
    let st2 = {
        let rhs = num(0.5);
        b.assign_elem(a0, vec![AffineExpr::scaled_var(k, -1) + ac(8)], rhs)
    };
    let st3 = {
        let rhs = num(0.5);
        b.assign_elem(a1, vec![AffineExpr::scaled_var(k, -1) + ac(8)], rhs)
    };
    let cond1 = cmp(CmpOp::Le, b.load_elem(a1, vec![av(k) + ac(8)]), num(3.5));
    let r1 = b.while_loop_labeled("R1", k, ac(1), ac(7), cond1, vec![st2, st3]);
    let mut program = Program::new("repro");
    program.add_procedure(b.build(vec![r0, r1]));
    program
}

#[test]
fn while_cond_reads_keep_watched_vars_live_across_regions() {
    let program = repro_program();
    let labeled = refidem_core::label::label_program(&program, ProcId::from_index(0)).unwrap();

    // R0: `a1` is read by R1's while-condition, so it is live-out of R0 and
    // must not be privatized (Private writes never reach main memory).
    let r0 = &labeled.regions[0];
    assert_eq!(r0.analysis.spec.loop_label, "R0");
    for site in r0.analysis.table.sites() {
        if site.access == AccessKind::Write {
            assert_ne!(
                r0.labeling.label(site.id),
                Label::Idempotent(refidem_core::label::IdemCategory::Private),
                "R0's write {:?} to the while-watched array must not be private",
                site.id
            );
        }
    }

    // R1 is a WHILE region: its condition read appears in the reference
    // table, and no body write may bypass speculative storage (segments past
    // the dynamic termination point must be fully discardable).
    let r1 = &labeled.regions[1];
    assert_eq!(r1.analysis.spec.loop_label, "R1");
    assert!(r1.analysis.loop_stmt.while_cond.is_some());
    assert!(!r1.analysis.fully_independent);
    let reads = r1
        .analysis
        .table
        .sites()
        .iter()
        .filter(|s| s.access == AccessKind::Read)
        .count();
    assert!(reads >= 1, "the while-condition read must be in the table");
    for site in r1.analysis.table.sites() {
        if site.access == AccessKind::Write {
            assert_eq!(
                r1.labeling.label(site.id),
                Label::Speculative,
                "while-body write {:?} must stay speculative",
                site.id
            );
        }
    }

    // Byte-exact across the full capacity ladder, both HOSE and CASE.
    let stats = check_program(&program, &DiffConfig::default()).unwrap_or_else(|e| {
        panic!("differential check failed: {e}");
    });
    assert!(stats.runs > 0);
}
