//! Figure 4 walkthrough: the APPLU `BUTS_DO1` loop.
//!
//! Prints the loop, the cross-segment dependences on the shared array `v`,
//! the per-reference labels (the S1 reads are idempotent shared-dependent
//! references, the S2 write stays speculative), and the HOSE/CASE
//! simulation results.
//!
//! Run with `cargo run --example applu_buts`.

use refidem::analysis::depend::dependence_to_string;
use refidem::core::label::{label_program_region, Label};
use refidem::ir::pretty;
use refidem::specsim::{compare_modes, SimConfig};
use refidem_benchmarks::suite::applu;

fn main() {
    let bench = applu::buts_do1();
    let labeled = label_program_region(&bench.program, &bench.region).expect("analyzes");
    let proc = &bench.program.procedures[bench.region.proc.index()];

    println!("=== {} (Figure 4) ===", bench.name);
    let (_, region_loop, _) = proc
        .split_at_loop(&bench.region.loop_label)
        .expect("top-level region");
    print!(
        "{}",
        pretty::stmts_to_string(
            &proc.vars,
            std::slice::from_ref(&refidem::ir::stmt::Stmt::Loop(region_loop.clone())),
            0
        )
    );

    println!("\n=== Cross-segment dependences on v ===");
    let v = proc.vars.lookup("v").expect("v exists");
    for dep in labeled.analysis.deps.deps() {
        let involves_v = labeled
            .analysis
            .table
            .get(dep.sink)
            .map(|s| s.var == v)
            .unwrap_or(false);
        if involves_v && dep.scope == refidem::analysis::DepScope::CrossSegment {
            println!(
                "  {}",
                dependence_to_string(&labeled.analysis.table, &proc.vars, dep)
            );
        }
    }

    println!("\n=== Labels for the references to v ===");
    for site in labeled.analysis.table.sites().iter().filter(|s| s.var == v) {
        let label = match labeled.labeling.label(site.id) {
            Label::Speculative => "speculative".to_string(),
            Label::Idempotent(cat) => format!("idempotent ({cat})"),
        };
        println!(
            "  {:<18} {:<6} -> {}",
            pretty::reference_to_string(&proc.vars, &site.reference),
            format!("{:?}", site.access).to_lowercase(),
            label
        );
    }

    let cfg = SimConfig::default().capacity(128);
    let cmp = compare_modes(&bench.program, &labeled, &cfg).expect("simulates");
    println!("\n=== Simulation (4 processors, 128-word speculative storage) ===");
    println!(
        "  HOSE: speedup {:.2} ({} overflow stalls) | CASE: speedup {:.2} ({} overflow stalls)",
        cmp.hose_speedup(),
        cmp.hose.overflow_stalls,
        cmp.case_speedup(),
        cmp.case.overflow_stalls
    );
}
