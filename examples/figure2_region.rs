//! Figure 2 walkthrough: RFW sets and idempotency labels of the paper's
//! five-segment example region.
//!
//! Run with `cargo run --example figure2_region`.

use refidem::core::label::{label_abstract_region, Label};
use refidem::core::rfw::rfw_for_abstract;
use refidem::ir::sites::AccessKind;
use refidem_benchmarks::examples::figure2;

fn main() {
    let region = figure2();
    let rfw = rfw_for_abstract(&region);
    let labeling = label_abstract_region(&region);

    println!("=== Figure 2: RFW sets ===");
    for (seg_idx, segment) in region.segments().iter().enumerate() {
        let vars: Vec<&str> = segment
            .refs
            .iter()
            .filter(|r| r.access == AccessKind::Write && rfw.contains(&r.id))
            .map(|r| region.vars().name(r.var))
            .collect();
        println!("  RFW(R{seg_idx}) = {{{}}}", vars.join(", "));
    }

    println!("\n=== Figure 2: labels ===");
    for (seg_idx, segment) in region.segments().iter().enumerate() {
        println!("  segment R{seg_idx}:");
        for r in &segment.refs {
            let dir = match r.access {
                AccessKind::Read => "read ",
                AccessKind::Write => "write",
            };
            let label = match labeling.label(r.id) {
                Label::Speculative => "speculative".to_string(),
                Label::Idempotent(cat) => format!("idempotent ({cat})"),
            };
            let extras = match (r.conditional, r.precise) {
                (true, _) => " [conditional]",
                (_, false) => " [indirect subscript]",
                _ => "",
            };
            println!(
                "    {dir} {:<3}{extras:<22} -> {label}",
                region.vars().name(r.var)
            );
        }
    }
    let stats = labeling.stats();
    println!(
        "\n{} of {} references are idempotent ({:.0}%)",
        stats.idempotent_static,
        stats.total_static,
        stats.idempotent_fraction() * 100.0
    );
}
