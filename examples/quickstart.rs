//! Quickstart: build a small loop, run the idempotency analysis, and compare
//! hardware-only (HOSE) against compiler-assisted (CASE) speculative
//! execution.
//!
//! Run with `cargo run --example quickstart`.

use refidem::core::label::{label_program_region_by_name, Label};
use refidem::ir::build::{ac, add, av, mul, num, ProcBuilder};
use refidem::ir::pretty;
use refidem::ir::program::Program;
use refidem::specsim::{compare_modes, SimConfig};

fn main() {
    // do k = 2, 40
    //   x(k)   = w1(k) + w2(k)*w3(k)       ! read-only rich, independent
    //   if (w1(k) > 1.0e6) then
    //     acc(k) = acc(k-1)*0.5 + w1(k)    ! may-dependence: not parallelizable
    //   endif
    // end do
    let mut b = ProcBuilder::new("quickstart");
    let x = b.array("x", &[48]);
    let acc = b.array("acc", &[48]);
    let w1 = b.array("w1", &[48]);
    let w2 = b.array("w2", &[48]);
    let w3 = b.array("w3", &[48]);
    let k = b.index("k");
    b.live_out(&[x, acc]);
    let rhs = add(
        b.load_elem(w1, vec![av(k)]),
        mul(b.load_elem(w2, vec![av(k)]), b.load_elem(w3, vec![av(k)])),
    );
    let s1 = b.assign_elem(x, vec![av(k)], rhs);
    let cond = refidem::ir::build::cmp(
        refidem::ir::expr::CmpOp::Gt,
        b.load_elem(w1, vec![av(k)]),
        num(1.0e6),
    );
    let acc_rhs = add(
        mul(b.load_elem(acc, vec![av(k) - ac(1)]), num(0.5)),
        b.load_elem(w1, vec![av(k)]),
    );
    let s2_body = b.assign_elem(acc, vec![av(k)], acc_rhs);
    let s2 = b.if_then(cond, vec![s2_body]);
    let region = b.do_loop_labeled("QUICK_DO1", k, ac(2), ac(40), vec![s1, s2]);
    let proc = b.build(vec![region]);
    let mut program = Program::new("quickstart");
    program.add_procedure(proc);

    println!("=== Program ===");
    print!("{}", pretty::program_to_string(&program));

    // Label the region's references (Algorithm 2).
    let labeled = label_program_region_by_name(&program, "QUICK_DO1").expect("analyzes");
    println!("\n=== Reference labels (Algorithm 2) ===");
    let proc = &program.procedures[0];
    for site in labeled.analysis.table.sites() {
        let label = match labeled.labeling.label(site.id) {
            Label::Speculative => "speculative".to_string(),
            Label::Idempotent(cat) => format!("idempotent ({cat})"),
        };
        println!(
            "  {:<12} {:<6} -> {}",
            pretty::reference_to_string(&proc.vars, &site.reference),
            format!("{:?}", site.access).to_lowercase(),
            label
        );
    }
    let stats = labeled.stats();
    println!(
        "\n{} of {} static references are idempotent ({:.0}%)",
        stats.idempotent_static,
        stats.total_static,
        stats.idempotent_fraction() * 100.0
    );

    // Simulate: 4 processors, tiny speculative storage.
    let cfg = SimConfig::default().capacity(4);
    let cmp = compare_modes(&program, &labeled, &cfg).expect("simulates");
    println!(
        "\n=== Speculative execution (4 processors, {} word speculative storage) ===",
        cfg.spec_capacity
    );
    println!("  sequential: {:>8} cycles", cmp.sequential_cycles);
    println!(
        "  HOSE:       {:>8} cycles  (speedup {:.2}, {} overflow stalls, {} violations)",
        cmp.hose.region_cycles,
        cmp.hose_speedup(),
        cmp.hose.overflow_stalls,
        cmp.hose.violations
    );
    println!(
        "  CASE:       {:>8} cycles  (speedup {:.2}, {} overflow stalls, {} violations)",
        cmp.case.region_cycles,
        cmp.case_speedup(),
        cmp.case.overflow_stalls,
        cmp.case.violations
    );
}
