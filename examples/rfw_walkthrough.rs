//! Figure 3 walkthrough: Algorithm 1 (re-occurring first write analysis).
//!
//! Prints, for each of the variables `x`, `y` and `z` of the paper's
//! Figure 3, the per-segment node reference types and the colors Algorithm 1
//! assigns, plus the resulting RFW write references.
//!
//! Run with `cargo run --example rfw_walkthrough`.

use refidem::core::model::SegmentId;
use refidem::core::rfw::{coloring_for_var, rfw_for_abstract, Color, NodeType};
use refidem::ir::sites::AccessKind;
use refidem_benchmarks::examples::figure3;

fn main() {
    let region = figure3();
    println!("=== Figure 3: Algorithm 1 coloring ===");
    println!("segments: {}", region.segment_count());

    for var_name in ["x", "y", "z"] {
        let var = region.var_id(var_name).expect("variable exists");
        let coloring = coloring_for_var(&region, var);
        println!("\nvariable {var_name}:");
        println!(
            "  {:<9} {:<7} {:<7} RFW writes?",
            "segment", "type", "color"
        );
        for seg in 0..region.segment_count() {
            let ty = match coloring.types[seg] {
                NodeType::Write => "Write",
                NodeType::Read => "Read",
                NodeType::Null => "Null",
            };
            let color = match coloring.colors[seg] {
                Color::White => "White",
                Color::Black => "Black",
            };
            println!(
                "  {:<9} {:<7} {:<7} {}",
                region.segments()[seg].name,
                ty,
                color,
                if coloring.is_rfw_segment(seg) {
                    "yes"
                } else {
                    "-"
                }
            );
        }
    }

    println!("\n=== RFW reference set ===");
    let rfw = rfw_for_abstract(&region);
    for seg in 0..region.segment_count() {
        for var_name in ["x", "y", "z"] {
            if let Some(w) = region.find_ref(SegmentId(seg), var_name, AccessKind::Write) {
                if rfw.contains(&w) {
                    println!(
                        "  write to {var_name} in segment {} is a re-occurring first write",
                        region.segments()[seg].name
                    );
                }
            }
        }
    }
}
