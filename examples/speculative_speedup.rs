//! Speculative-storage pressure study: how the HOSE/CASE gap grows as the
//! per-processor speculative storage shrinks, on the MGRID `RESID_DO600`
//! stencil (fully-independent) and the TOMCATV `MAIN_DO80` loop (read-only
//! category).
//!
//! Run with `cargo run --release --example speculative_speedup`.

use refidem::core::label::label_program_region;
use refidem::specsim::{compare_modes, SimConfig};
use refidem_benchmarks::suite::{mgrid, tomcatv};
use refidem_benchmarks::LoopBenchmark;

fn sweep(bench: &LoopBenchmark, capacities: &[usize]) {
    println!("=== {} ===", bench.name);
    println!(
        "{:>10} {:>10} {:>10} {:>12} {:>12}",
        "capacity", "HOSE spd", "CASE spd", "HOSE ovfl", "CASE ovfl"
    );
    let labeled = label_program_region(&bench.program, &bench.region).expect("analyzes");
    for &cap in capacities {
        let cfg = SimConfig::default().capacity(cap);
        let cmp = compare_modes(&bench.program, &labeled, &cfg).expect("simulates");
        println!(
            "{:>10} {:>10.2} {:>10.2} {:>12} {:>12}",
            cap,
            cmp.hose_speedup(),
            cmp.case_speedup(),
            cmp.hose.overflow_stalls,
            cmp.case.overflow_stalls
        );
    }
    println!();
}

fn main() {
    sweep(&mgrid::resid_do600(), &[8, 16, 32, 64, 128]);
    sweep(&tomcatv::main_do80(), &[2, 4, 8, 16]);
}
