//! # refidem — Reference Idempotency Analysis
//!
//! Facade crate for the reproduction of *"Reference Idempotency Analysis: A
//! Framework for Optimizing Speculative Execution"* (Kim, Ooi, Eigenmann,
//! Falsafi, Vijaykumar — PPoPP 2001).
//!
//! The workspace is organized as a stack of crates; this facade re-exports
//! the public API of each layer so downstream users can depend on a single
//! crate:
//!
//! * [`ir`] — the loop-oriented intermediate representation, program builder,
//!   pretty printer and sequential interpreter.
//! * [`analysis`] — dataflow, data-dependence, read-only and privatization
//!   analyses (the prerequisites of Section 4.2.1 of the paper).
//! * [`core`] — the paper's contribution: the region/segment model,
//!   re-occurring-first-write analysis (Algorithm 1) and idempotency labeling
//!   (Algorithm 2, Theorems 1–2).
//! * [`specsim`] — the speculative execution substrate: HOSE (Definition 2)
//!   and CASE (Definition 4) simulators with bounded speculative storage.
//! * [`benchmarks`] — synthetic benchmark programs mirroring the paper's
//!   evaluation suite, plus the worked examples of Figures 1–4.
//!
//! ## Quickstart
//!
//! ```
//! use refidem::prelude::*;
//!
//! // Build the paper's Figure 4 loop (APPLU BUTS_DO1), label its references
//! // and inspect the result.
//! let bench = refidem::benchmarks::suite::applu::buts_do1();
//! let labeled = label_program_region(&bench.program, &bench.region).expect("labeling");
//! assert!(labeled.stats().idempotent_static > 0);
//! ```
pub use refidem_analysis as analysis;
pub use refidem_benchmarks as benchmarks;
pub use refidem_core as core;
pub use refidem_ir as ir;
pub use refidem_specsim as specsim;

/// Commonly used items from every layer, re-exported for convenience.
pub mod prelude {
    pub use refidem_analysis::prelude::*;
    pub use refidem_core::prelude::*;
    pub use refidem_ir::prelude::*;
    pub use refidem_specsim::prelude::*;
}
