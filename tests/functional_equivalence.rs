//! Lemmas 1 and 2 as executable tests: for every named loop and for every
//! region of every benchmark, the final memory state of a HOSE or CASE run
//! must equal the sequential interpretation (ignoring dead, segment-private
//! locations), for several speculative-storage capacities — including tiny
//! ones that force overflow stalls, roll-backs and head write-through.

use refidem::core::label::label_program_region;
use refidem::specsim::{simulate_region, verify_against_sequential, ExecMode, SimConfig};
use refidem_benchmarks::{all_benchmarks, all_named_loops};

#[test]
fn named_loops_match_sequential_under_hose_and_case() {
    for bench in all_named_loops() {
        let labeled = label_program_region(&bench.program, &bench.region).expect("analyzes");
        for capacity in [4usize, 32, 256] {
            let cfg = SimConfig::default().capacity(capacity);
            for mode in [ExecMode::Hose, ExecMode::Case] {
                let diffs = verify_against_sequential(&bench.program, &labeled, mode, &cfg)
                    .expect("simulation runs");
                assert!(
                    diffs.is_empty(),
                    "{} under {mode} with capacity {capacity}: {} differing addresses (first: {:?})",
                    bench.name,
                    diffs.len(),
                    diffs.first()
                );
            }
        }
    }
}

#[test]
fn every_benchmark_region_matches_sequential_under_case() {
    let cfg = SimConfig::default().capacity(16);
    for bench in all_benchmarks() {
        for region in bench.regions() {
            let labeled = label_program_region(&bench.program, &region).expect("analyzes");
            let diffs = verify_against_sequential(&bench.program, &labeled, ExecMode::Case, &cfg)
                .expect("simulation runs");
            assert!(
                diffs.is_empty(),
                "{} region {} under CASE: {} differing addresses",
                bench.name,
                region.loop_label,
                diffs.len()
            );
        }
    }
}

#[test]
fn speculative_storage_never_exceeds_its_capacity() {
    for bench in all_named_loops() {
        let labeled = label_program_region(&bench.program, &bench.region).expect("analyzes");
        for capacity in [4usize, 16, 64] {
            let cfg = SimConfig::default().capacity(capacity);
            for mode in [ExecMode::Hose, ExecMode::Case] {
                let out = simulate_region(&bench.program, &labeled, mode, &cfg).expect("runs");
                assert!(
                    out.report.spec_peak_occupancy <= capacity,
                    "{} under {mode}: peak occupancy {} exceeds capacity {capacity}",
                    bench.name,
                    out.report.spec_peak_occupancy
                );
            }
        }
    }
}

#[test]
fn case_never_places_more_references_in_speculative_storage_than_hose() {
    let cfg = SimConfig::default().capacity(64);
    for bench in all_named_loops() {
        let labeled = label_program_region(&bench.program, &bench.region).expect("analyzes");
        let hose = simulate_region(&bench.program, &labeled, ExecMode::Hose, &cfg).expect("runs");
        let case = simulate_region(&bench.program, &labeled, ExecMode::Case, &cfg).expect("runs");
        let hose_spec = hose.report.spec_reads + hose.report.spec_writes;
        let case_spec = case.report.spec_reads + case.report.spec_writes;
        assert!(
            case_spec <= hose_spec,
            "{}: CASE placed {} references in speculative storage, HOSE {}",
            bench.name,
            case_spec,
            hose_spec
        );
        // Under CASE some references must actually bypass (every named loop
        // has idempotent references).
        assert!(case.report.bypass_fraction() > 0.0, "{}", bench.name);
    }
}
