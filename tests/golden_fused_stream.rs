//! Golden snapshot of the fused superinstruction stream for the FPPPP
//! `TWLDRV_DO100` giant block — the tentpole workload of the fused
//! execution tier. Any change to the fuse pipeline (peeling, register
//! rewrite, superinstruction merging, advance-and-load) shows up as a
//! readable instruction-stream diff rather than a bare perf delta.
//!
//! To regenerate after an intentional fuse-pipeline change:
//! `cargo test --test golden_fused_stream -- --ignored --nocapture print_golden`
//! and paste the printed block over the constant below.

use refidem::ir::lowered::{fused::fuse, lower};
use refidem::ir::memory::Layout;
use refidem_benchmarks::suite::fpppp;

/// Lines of disassembly kept in the snapshot. The peeled giant block is
/// hundreds of fused statements, each collapsed to one whole-statement
/// superinstruction; the head captures the repeating form plus the peel
/// machinery, the footer records the exact total so silent growth still
/// fails.
const HEAD_LINES: usize = 24;

fn render_fused_stream() -> String {
    let bench = fpppp::twldrv_do100();
    let proc = &bench.program.procedures[bench.region.proc.index()];
    let layout = Layout::new(&proc.vars);
    let base = lower(&proc.vars, &layout, &proc.body);
    let fused = fuse(&base);
    let mut out = String::new();
    out.push_str(&format!(
        "FPPPP TWLDRV_DO100: {} insts (from {} plain), {} superinsts, \
         {} peeled loops, register_form={}\n",
        fused.inst_count(),
        base.inst_count(),
        fused.superinst_count(),
        fused.peeled_loop_count(),
        fused.is_register_form()
    ));
    let disasm = fused.disasm();
    let lines: Vec<&str> = disasm.lines().collect();
    for line in lines.iter().take(HEAD_LINES) {
        out.push_str(line);
        out.push('\n');
    }
    if lines.len() > HEAD_LINES {
        out.push_str(&format!(
            "  ... {} more instructions\n",
            lines.len() - HEAD_LINES
        ));
    }
    out
}

const GOLDEN_TWLDRV_FUSED_STREAM: &str = "\
FPPPP TWLDRV_DO100: 537 insts (from 779 plain), 524 superinsts, 1 peeled loops, register_form=true
   0  peelenter #6 = 1
   1  rload2constbinstore r2:scalar@516 = r0:scalar@517 Add (r389:scalar@0 Mul -1)
   2  rload2constbinstore r5:scalar@517 = r3:scalar@518 Add (r390:scalar@1 Mul -0.9375)
   3  rload2constbinstore r8:scalar@518 = r6:scalar@519 Add (r391:scalar@2 Mul -0.875)
   4  rload2constbinstore r11:scalar@519 = r9:scalar@516 Add (r392:scalar@3 Mul -0.8125)
   5  rload2constbinstore r14:scalar@516 = r12:scalar@517 Add (r393:scalar@4 Mul -0.75)
   6  rload2constbinstore r17:scalar@517 = r15:scalar@518 Add (r394:scalar@5 Mul -0.6875)
   7  rload2constbinstore r20:scalar@518 = r18:scalar@519 Add (r395:scalar@6 Mul -0.625)
   8  rload2constbinstore r23:scalar@519 = r21:scalar@516 Add (r396:scalar@7 Mul -0.5625)
   9  rload2constbinstore r26:scalar@516 = r24:scalar@517 Add (r397:scalar@8 Mul -0.5)
  10  rload2constbinstore r29:scalar@517 = r27:scalar@518 Add (r398:scalar@9 Mul -0.4375)
  11  rload2constbinstore r32:scalar@518 = r30:scalar@519 Add (r399:scalar@10 Mul -0.375)
  12  rload2constbinstore r35:scalar@519 = r33:scalar@516 Add (r400:scalar@11 Mul -0.3125)
  13  rload2constbinstore r38:scalar@516 = r36:scalar@517 Add (r401:scalar@12 Mul -0.25)
  14  rload2constbinstore r41:scalar@517 = r39:scalar@518 Add (r402:scalar@13 Mul -0.1875)
  15  rload2constbinstore r44:scalar@518 = r42:scalar@519 Add (r403:scalar@14 Mul -0.125)
  16  rload2constbinstore r47:scalar@519 = r45:scalar@516 Add (r404:scalar@15 Mul -0.0625)
  17  rload2constbinstore r50:scalar@516 = r48:scalar@517 Add (r405:scalar@16 Mul 0)
  18  rload2constbinstore r53:scalar@517 = r51:scalar@518 Add (r406:scalar@17 Mul 0.0625)
  19  rload2constbinstore r56:scalar@518 = r54:scalar@519 Add (r407:scalar@18 Mul 0.125)
  20  rload2constbinstore r59:scalar@519 = r57:scalar@516 Add (r408:scalar@19 Mul 0.1875)
  21  rload2constbinstore r62:scalar@516 = r60:scalar@517 Add (r409:scalar@20 Mul 0.25)
  22  rload2constbinstore r65:scalar@517 = r63:scalar@518 Add (r410:scalar@21 Mul 0.3125)
  23  rload2constbinstore r68:scalar@518 = r66:scalar@519 Add (r411:scalar@22 Mul 0.375)
  ... 513 more instructions
";

#[test]
#[ignore = "prints the current golden for regeneration"]
fn print_golden() {
    println!("=== twldrv fused stream ===\n{}", render_fused_stream());
}

#[test]
fn twldrv_fused_stream_matches_golden() {
    assert_eq!(render_fused_stream(), GOLDEN_TWLDRV_FUSED_STREAM);
}
