//! Golden snapshots of the Figure 1–4 worked examples: per-reference labels
//! and static/dynamic statistics rendered textually, so any labeling
//! regression shows up as a readable diff rather than a bare number.
//!
//! To regenerate after an intentional labeling change:
//! `cargo test --test golden_labels -- --ignored --nocapture print_goldens`
//! and paste the printed blocks over the constants below.

use refidem::core::label::{label_abstract_region, label_program_region, Label};
use refidem::core::model::AbstractRegion;
use refidem::specsim::{run_sequential, SimConfig};
use refidem_benchmarks::examples;
use refidem_benchmarks::suite::irreg;

/// Renders an abstract region's labeling: every reference in segment order
/// with its label, then the static statistics.
fn render_abstract(region: &AbstractRegion) -> String {
    let labeling = label_abstract_region(region);
    let mut out = String::new();
    out.push_str(&format!(
        "region {} fully_independent={}\n",
        region.name, labeling.fully_independent
    ));
    for (seg, r) in region.all_refs() {
        let access = match r.access {
            refidem::ir::sites::AccessKind::Read => "read ",
            refidem::ir::sites::AccessKind::Write => "write",
        };
        let label = match labeling.label(r.id) {
            Label::Speculative => "speculative".to_string(),
            Label::Idempotent(c) => format!("idempotent({c})"),
        };
        out.push_str(&format!(
            "  seg{} {access} {:<2} -> {label}\n",
            seg.index(),
            region.vars().name(r.var),
        ));
    }
    let stats = labeling.stats();
    out.push_str(&format!(
        "static total={} idempotent={} speculative={}\n",
        stats.total_static, stats.idempotent_static, stats.speculative_static
    ));
    for (cat, n) in &stats.by_category {
        out.push_str(&format!("  {cat}: {n}\n"));
    }
    out
}

/// Renders a loop benchmark's labeling plus dynamic statistics from a
/// sequential interpretation.
fn render_loop(bench: &refidem_benchmarks::LoopBenchmark) -> String {
    let labeled = label_program_region(&bench.program, &bench.region).expect("analyzes");
    let proc = &bench.program.procedures[bench.region.proc.index()];
    let mut out = String::new();
    out.push_str(&format!(
        "loop {} region {} fully_independent={}\n",
        bench.name, bench.region.loop_label, labeled.labeling.fully_independent
    ));
    for site in labeled.analysis.table.sites() {
        let access = match site.access {
            refidem::ir::sites::AccessKind::Read => "read ",
            refidem::ir::sites::AccessKind::Write => "write",
        };
        let label = match labeled.labeling.label(site.id) {
            Label::Speculative => "speculative".to_string(),
            Label::Idempotent(c) => format!("idempotent({c})"),
        };
        out.push_str(&format!(
            "  {:?} {access} {:<8} -> {label}\n",
            site.id,
            proc.vars.name(site.var),
        ));
    }
    let stats = labeled.stats();
    out.push_str(&format!(
        "static total={} idempotent={} speculative={}\n",
        stats.total_static, stats.idempotent_static, stats.speculative_static
    ));
    for (cat, n) in &stats.by_category {
        out.push_str(&format!("  {cat}: {n}\n"));
    }
    let seq = run_sequential(&bench.program, &labeled, &SimConfig::default()).expect("runs");
    let dyn_stats = labeled.labeling.dynamic_stats(&seq.region_counts);
    out.push_str(&format!(
        "dynamic total={} idempotent={} fraction={:.4}\n",
        dyn_stats.total,
        dyn_stats.idempotent,
        dyn_stats.fraction_idempotent()
    ));
    for (cat, n) in &dyn_stats.by_category {
        out.push_str(&format!("  {cat}: {n}\n"));
    }
    out
}

const GOLDEN_FIGURE1: &str = "\
region figure1 fully_independent=false
  seg0 read  B  -> idempotent(read-only)
  seg0 write A  -> idempotent(shared-dependent)
  seg0 read  B  -> idempotent(read-only)
  seg1 write C  -> idempotent(private)
  seg1 read  A  -> speculative
  seg1 read  B  -> idempotent(read-only)
  seg1 read  C  -> idempotent(private)
static total=7 idempotent=6 speculative=1
  read-only: 3
  private: 2
  shared-dependent: 1
";

const GOLDEN_FIGURE2: &str = "\
region figure2 fully_independent=false
  seg0 read  G  -> idempotent(read-only)
  seg0 write C  -> idempotent(shared-dependent)
  seg0 read  C  -> idempotent(shared-dependent)
  seg0 write N  -> idempotent(shared-dependent)
  seg0 read  N  -> idempotent(shared-dependent)
  seg0 write J  -> idempotent(shared-dependent)
  seg0 read  F  -> idempotent(shared-dependent)
  seg1 write E  -> idempotent(shared-dependent)
  seg1 write J  -> speculative
  seg2 write A  -> idempotent(shared-dependent)
  seg2 read  N  -> speculative
  seg2 read  E  -> speculative
  seg2 write K  -> speculative
  seg2 read  A  -> idempotent(shared-dependent)
  seg2 write B  -> speculative
  seg3 write A  -> idempotent(shared-dependent)
  seg3 read  E  -> speculative
  seg3 read  E  -> speculative
  seg3 write K  -> speculative
  seg3 read  A  -> idempotent(shared-dependent)
  seg3 write B  -> speculative
  seg4 write F  -> speculative
  seg4 read  F  -> speculative
  seg4 read  G  -> idempotent(read-only)
  seg4 read  G  -> idempotent(read-only)
  seg4 read  H  -> idempotent(shared-dependent)
  seg4 write H  -> speculative
static total=27 idempotent=15 speculative=12
  read-only: 3
  shared-dependent: 12
";

const GOLDEN_FIGURE3: &str = "\
region figure3 fully_independent=false
  seg0 write x  -> idempotent(shared-dependent)
  seg1 read  z  -> idempotent(shared-dependent)
  seg1 write y  -> idempotent(shared-dependent)
  seg2 write y  -> idempotent(shared-dependent)
  seg3 write y  -> speculative
  seg3 read  x  -> speculative
  seg4 write y  -> speculative
  seg5 write x  -> speculative
  seg5 write y  -> speculative
  seg5 write z  -> speculative
  seg6 read  y  -> speculative
  seg6 write x  -> speculative
static total=12 idempotent=4 speculative=8
  shared-dependent: 4
";

const GOLDEN_FIGURE4: &str = "\
loop APPLU BUTS_DO1 region BUTS_DO1 fully_independent=false
  r33 write tmp      -> idempotent(private)
  r25 read  tmp      -> idempotent(private)
  r26 read  v        -> idempotent(shared-dependent)
  r27 read  v        -> idempotent(shared-dependent)
  r28 read  v        -> idempotent(shared-dependent)
  r29 write tmp      -> idempotent(private)
  r30 read  v        -> idempotent(shared-dependent)
  r31 read  tmp      -> idempotent(private)
  r32 write v        -> speculative
static total=9 idempotent=8 speculative=1
  private: 4
  shared-dependent: 4
dynamic total=2624 idempotent=2304 fraction=0.8780
  private: 1024
  shared-dependent: 1280
";

const GOLDEN_GATHER_DO100: &str = "\
loop IRREG GATHER_DO100 region GATHER_DO100 fully_independent=false
  r8 read  row      -> idempotent(read-only)
  r9 read  y        -> speculative
  r10 read  a        -> idempotent(read-only)
  r6 read  col      -> idempotent(read-only)
  r7 read  x        -> idempotent(read-only)
  r11 read  row      -> idempotent(read-only)
  r12 write y        -> speculative
static total=7 idempotent=5 speculative=2
  read-only: 5
dynamic total=224 idempotent=160 fraction=0.7143
  read-only: 160
";

const GOLDEN_WALK_DO200: &str = "\
loop IRREG WALK_DO200 region WALK_DO200 fully_independent=false
  r20 read  key      -> idempotent(read-only)
  r15 read  out      -> idempotent(shared-dependent)
  r13 read  ptr      -> idempotent(read-only)
  r14 read  tbl      -> idempotent(read-only)
  r16 write out      -> speculative
  r17 read  out      -> speculative
  r18 read  tbl      -> idempotent(read-only)
  r19 write out      -> speculative
static total=8 idempotent=5 speculative=3
  read-only: 4
  shared-dependent: 1
dynamic total=137 idempotent=86 fraction=0.6277
  read-only: 69
  shared-dependent: 17
";

const GOLDEN_HIST_DO300: &str = "\
loop IRREG HIST_DO300 region HIST_DO300 fully_independent=false
  r26 read  mask     -> idempotent(read-only)
  r21 read  bin      -> idempotent(read-only)
  r22 read  hist     -> speculative
  r23 read  w        -> idempotent(read-only)
  r24 read  bin      -> idempotent(read-only)
  r25 write hist     -> speculative
static total=6 idempotent=4 speculative=2
  read-only: 4
dynamic total=117 idempotent=83 fraction=0.7094
  read-only: 83
";

#[test]
#[ignore = "prints the current goldens for regeneration"]
fn print_goldens() {
    println!("=== figure1 ===\n{}", render_abstract(&examples::figure1()));
    println!("=== figure2 ===\n{}", render_abstract(&examples::figure2()));
    println!("=== figure3 ===\n{}", render_abstract(&examples::figure3()));
    println!("=== figure4 ===\n{}", render_loop(&examples::figure4()));
    println!("=== gather ===\n{}", render_loop(&irreg::gather_do100()));
    println!("=== walk ===\n{}", render_loop(&irreg::walk_do200()));
    println!("=== hist ===\n{}", render_loop(&irreg::hist_do300()));
}

#[test]
fn figure1_labels_match_golden() {
    assert_eq!(render_abstract(&examples::figure1()), GOLDEN_FIGURE1);
}

#[test]
fn figure2_labels_match_golden() {
    assert_eq!(render_abstract(&examples::figure2()), GOLDEN_FIGURE2);
}

#[test]
fn figure3_labels_match_golden() {
    assert_eq!(render_abstract(&examples::figure3()), GOLDEN_FIGURE3);
}

#[test]
fn figure4_labels_match_golden() {
    assert_eq!(render_loop(&examples::figure4()), GOLDEN_FIGURE4);
}

#[test]
fn irregular_gather_labels_match_golden() {
    // The indirect gather/scatter: every index-array and operand stream
    // read stays read-only idempotent, the indirect y accesses stay
    // speculative — CASE bypasses 5 of 7 static references even though
    // the analyzer proved nothing about the region.
    assert_eq!(render_loop(&irreg::gather_do100()), GOLDEN_GATHER_DO100);
}

#[test]
fn irregular_walk_labels_match_golden() {
    // The WHILE-region table walk: the continuation condition's key read
    // is read-only idempotent, the out accumulation chain is speculative
    // (conditional writes can never be RFW), and the dynamic counts
    // reflect the data-dependent termination at k = 18 of 32.
    assert_eq!(render_loop(&irreg::walk_do200()), GOLDEN_WALK_DO200);
}

#[test]
fn irregular_hist_labels_match_golden() {
    // The guarded histogram: mask/bin/w reads are read-only idempotent,
    // the guarded indirect hist update is speculative.
    assert_eq!(render_loop(&irreg::hist_do300()), GOLDEN_HIST_DO300);
}
