//! The IRREG workload end to end: the analyzer must fail to prove any of
//! its regions independent, yet speculation must win at capacity >= 4 —
//! the acceptance gate of the irregular-reference scenarios.

use refidem::analysis::region::RegionAnalysis;
use refidem::benchmarks::{irregular_loops, suite};
use refidem::core::label::label_program;
use refidem::core::label::label_program_region_by_name;
use refidem::ir::ids::ProcId;
use refidem::specsim::{compare_modes, compare_program_modes, SimConfig};

#[test]
fn analyzer_cannot_prove_any_irregular_region_independent() {
    for l in irregular_loops() {
        let a = RegionAnalysis::analyze(&l.program, &l.region).unwrap();
        assert!(!a.fully_independent, "{}", l.name);
        assert!(
            !a.compiler_parallelizable,
            "{}: a conventional parallelizer must reject this loop",
            l.name
        );
    }
}

#[test]
fn speculation_wins_on_the_whole_irreg_program() {
    // Permutation index streams carry no real conflicts and the walk
    // terminates early, so at capacity >= 4 both HOSE and CASE beat the
    // sequential interpretation even though the analyzer proved nothing.
    let bench = suite::irreg::benchmark();
    let labeled = label_program(&bench.program, ProcId::from_index(0)).unwrap();
    let cfg = SimConfig::default().capacity(8);
    let cmp = compare_program_modes(&bench.program, &labeled, &cfg).unwrap();
    assert!(
        cmp.hose_speedup() > 1.0,
        "HOSE whole-program speedup {} must exceed 1",
        cmp.hose_speedup()
    );
    assert!(
        cmp.case_speedup() > 1.0,
        "CASE whole-program speedup {} must exceed 1",
        cmp.case_speedup()
    );
}

#[test]
fn every_irregular_loop_speeds_up_at_capacity_4_and_up() {
    for l in irregular_loops() {
        let label = &l.region.loop_label;
        let labeled = label_program_region_by_name(&l.program, label).unwrap();
        for capacity in [4usize, 8, 32] {
            let cfg = SimConfig::default().capacity(capacity);
            let cmp = compare_modes(&l.program, &labeled, &cfg).unwrap();
            assert!(
                cmp.case_speedup() > 1.0,
                "{} CASE speedup {} at capacity {capacity} must exceed 1",
                l.name,
                cmp.case_speedup()
            );
        }
        // HOSE buffers every reference, so give it headroom: at a capacity
        // that fits the full per-segment footprint it must also win.
        let cfg = SimConfig::default().capacity(32);
        let cmp = compare_modes(&l.program, &labeled, &cfg).unwrap();
        assert!(
            cmp.hose_speedup() > 1.0,
            "{} HOSE speedup {} at capacity 32 must exceed 1",
            l.name,
            cmp.hose_speedup()
        );
    }
}
