//! Cross-crate invariants of the labeling (Theorems 1 and 2, Lemma 3) checked
//! over every region of every benchmark program.

use refidem::analysis::{DepScope, VarClass};
use refidem::core::label::{label_program_region, IdemCategory, Label};
use refidem::core::rfw::rfw_for_loop_region;
use refidem::ir::sites::AccessKind;
use refidem_benchmarks::all_benchmarks;

#[test]
fn idempotent_references_are_never_cross_segment_sinks() {
    // Lemma 3: the sink of a cross-segment dependence must be speculative.
    for bench in all_benchmarks() {
        for region in bench.regions() {
            let labeled = label_program_region(&bench.program, &region).expect("analyzes");
            if labeled.labeling.fully_independent {
                continue;
            }
            for site in labeled.analysis.table.sites() {
                if labeled.labeling.is_idempotent(site.id)
                    && labeled.labeling.label(site.id).category() != Some(IdemCategory::Private)
                {
                    assert!(
                        !labeled.analysis.deps.is_sink_of_cross_segment(site.id),
                        "{} {}: idempotent reference {} is a cross-segment sink",
                        bench.name,
                        region.loop_label,
                        site.id
                    );
                }
            }
        }
    }
}

#[test]
fn idempotent_writes_are_rfw_and_reads_have_idempotent_intra_sources() {
    // Theorems 1 and 2 (the "only if" directions, excluding the read-only /
    // private / fully-independent special cases).
    for bench in all_benchmarks() {
        for region in bench.regions() {
            let labeled = label_program_region(&bench.program, &region).expect("analyzes");
            if labeled.labeling.fully_independent {
                continue;
            }
            let rfw = rfw_for_loop_region(&labeled.analysis);
            for site in labeled.analysis.table.sites() {
                let label = labeled.labeling.label(site.id);
                let Label::Idempotent(IdemCategory::SharedDependent) = label else {
                    continue;
                };
                match site.access {
                    AccessKind::Write => {
                        assert!(
                            rfw.contains(&site.id),
                            "{} {}: shared-dependent write {} is not a RFW",
                            bench.name,
                            region.loop_label,
                            site.id
                        );
                    }
                    AccessKind::Read => {
                        for dep in labeled.analysis.deps.deps_into(site.id) {
                            assert_eq!(dep.scope, DepScope::IntraSegment);
                            assert!(
                                labeled.labeling.is_idempotent(dep.source),
                                "{} {}: covered read {} has a speculative source {}",
                                bench.name,
                                region.loop_label,
                                site.id,
                                dep.source
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn category_labels_agree_with_the_variable_classification() {
    for bench in all_benchmarks() {
        for region in bench.regions() {
            let labeled = label_program_region(&bench.program, &region).expect("analyzes");
            if labeled.labeling.fully_independent {
                // Lemma 7: everything idempotent.
                assert!(labeled
                    .labeling
                    .iter()
                    .all(|(_, l)| l == Label::Idempotent(IdemCategory::FullyIndependent)));
                continue;
            }
            for site in labeled.analysis.table.sites() {
                match labeled.labeling.label(site.id).category() {
                    Some(IdemCategory::ReadOnly) => {
                        assert_eq!(
                            labeled.analysis.classes.class(site.var),
                            VarClass::ReadOnly,
                            "{} {}",
                            bench.name,
                            region.loop_label
                        );
                    }
                    Some(IdemCategory::Private) => {
                        assert_eq!(
                            labeled.analysis.classes.class(site.var),
                            VarClass::Private,
                            "{} {}",
                            bench.name,
                            region.loop_label
                        );
                    }
                    _ => {}
                }
            }
            // Every reference to a read-only variable is labeled idempotent.
            for site in labeled.analysis.table.sites() {
                if labeled.analysis.classes.class(site.var) == VarClass::ReadOnly {
                    assert!(labeled.labeling.is_idempotent(site.id));
                }
            }
        }
    }
}

#[test]
fn parallelizable_regions_are_a_superset_of_fully_independent_ones() {
    let mut fully_independent = 0usize;
    let mut parallelizable = 0usize;
    for bench in all_benchmarks() {
        for region in bench.regions() {
            let labeled = label_program_region(&bench.program, &region).expect("analyzes");
            if labeled.analysis.fully_independent {
                fully_independent += 1;
                assert!(
                    labeled.analysis.compiler_parallelizable,
                    "{} {}: fully independent but not parallelizable",
                    bench.name, region.loop_label
                );
            }
            if labeled.analysis.compiler_parallelizable {
                parallelizable += 1;
            }
        }
    }
    assert!(fully_independent > 0);
    assert!(parallelizable >= fully_independent);
}
