//! Cross-crate invariants of the labeling (Theorems 1 and 2, Lemma 3) checked
//! over every region of every benchmark program.

use refidem::analysis::{DepScope, VarClass};
use refidem::core::label::{label_program_region, IdemCategory, Label};
use refidem::core::rfw::rfw_for_loop_region;
use refidem::ir::expr::Subscript;
use refidem::ir::sites::{AccessKind, RefSite};
use refidem_benchmarks::all_benchmarks;

fn is_indirect(site: &RefSite) -> bool {
    site.reference
        .subs
        .iter()
        .any(|s| matches!(s, Subscript::Indirect(_)))
}

#[test]
fn idempotent_references_are_never_cross_segment_sinks() {
    // Lemma 3: the sink of a cross-segment dependence must be speculative.
    for bench in all_benchmarks() {
        for region in bench.regions() {
            let labeled = label_program_region(&bench.program, &region).expect("analyzes");
            if labeled.labeling.fully_independent {
                continue;
            }
            for site in labeled.analysis.table.sites() {
                if labeled.labeling.is_idempotent(site.id)
                    && labeled.labeling.label(site.id).category() != Some(IdemCategory::Private)
                {
                    assert!(
                        !labeled.analysis.deps.is_sink_of_cross_segment(site.id),
                        "{} {}: idempotent reference {} is a cross-segment sink",
                        bench.name,
                        region.loop_label,
                        site.id
                    );
                }
            }
        }
    }
}

#[test]
fn idempotent_writes_are_rfw_and_reads_have_idempotent_intra_sources() {
    // Theorems 1 and 2 (the "only if" directions, excluding the read-only /
    // private / fully-independent special cases).
    for bench in all_benchmarks() {
        for region in bench.regions() {
            let labeled = label_program_region(&bench.program, &region).expect("analyzes");
            if labeled.labeling.fully_independent {
                continue;
            }
            let rfw = rfw_for_loop_region(&labeled.analysis);
            for site in labeled.analysis.table.sites() {
                let label = labeled.labeling.label(site.id);
                let Label::Idempotent(IdemCategory::SharedDependent) = label else {
                    continue;
                };
                match site.access {
                    AccessKind::Write => {
                        assert!(
                            rfw.contains(&site.id),
                            "{} {}: shared-dependent write {} is not a RFW",
                            bench.name,
                            region.loop_label,
                            site.id
                        );
                    }
                    AccessKind::Read => {
                        for dep in labeled.analysis.deps.deps_into(site.id) {
                            assert_eq!(dep.scope, DepScope::IntraSegment);
                            assert!(
                                labeled.labeling.is_idempotent(dep.source),
                                "{} {}: covered read {} has a speculative source {}",
                                bench.name,
                                region.loop_label,
                                site.id,
                                dep.source
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn category_labels_agree_with_the_variable_classification() {
    for bench in all_benchmarks() {
        for region in bench.regions() {
            let labeled = label_program_region(&bench.program, &region).expect("analyzes");
            if labeled.labeling.fully_independent {
                // Lemma 7: everything idempotent.
                assert!(labeled
                    .labeling
                    .iter()
                    .all(|(_, l)| l == Label::Idempotent(IdemCategory::FullyIndependent)));
                continue;
            }
            for site in labeled.analysis.table.sites() {
                match labeled.labeling.label(site.id).category() {
                    Some(IdemCategory::ReadOnly) => {
                        assert_eq!(
                            labeled.analysis.classes.class(site.var),
                            VarClass::ReadOnly,
                            "{} {}",
                            bench.name,
                            region.loop_label
                        );
                    }
                    Some(IdemCategory::Private) => {
                        assert_eq!(
                            labeled.analysis.classes.class(site.var),
                            VarClass::Private,
                            "{} {}",
                            bench.name,
                            region.loop_label
                        );
                    }
                    _ => {}
                }
            }
            // Every reference to a read-only variable is labeled idempotent.
            for site in labeled.analysis.table.sites() {
                if labeled.analysis.classes.class(site.var) == VarClass::ReadOnly {
                    assert!(labeled.labeling.is_idempotent(site.id));
                }
            }
        }
    }
}

#[test]
fn indirect_references_are_never_provably_independent() {
    // Irregular address resolution: a reference whose address goes through
    // an indirection array can never be *proved* independent, so its region
    // must never be fully independent or compiler-parallelizable, and the
    // reference itself may only be idempotent through the syntactic escape
    // hatches — read-only variables (any read of a never-written variable
    // is idempotent regardless of its address). Indirect writes must stay
    // speculative: they are address-imprecise, so they can be neither RFW
    // nor privatizable.
    let mut indirect_seen = 0usize;
    for bench in all_benchmarks() {
        for region in bench.regions() {
            let labeled = label_program_region(&bench.program, &region).expect("analyzes");
            let has_indirect = labeled.analysis.table.sites().iter().any(is_indirect);
            if !has_indirect {
                continue;
            }
            assert!(
                !labeled.analysis.fully_independent,
                "{} {}: indirect references but provably independent",
                bench.name, region.loop_label
            );
            assert!(
                !labeled.analysis.compiler_parallelizable,
                "{} {}: indirect references but compiler-parallelizable",
                bench.name, region.loop_label
            );
            for site in labeled.analysis.table.sites() {
                if !is_indirect(site) {
                    continue;
                }
                indirect_seen += 1;
                match site.access {
                    AccessKind::Write => {
                        assert_eq!(
                            labeled.labeling.label(site.id),
                            Label::Speculative,
                            "{} {}: indirect write {} must be speculative",
                            bench.name,
                            region.loop_label,
                            site.id
                        );
                    }
                    AccessKind::Read => {
                        if labeled.labeling.is_idempotent(site.id) {
                            assert_eq!(
                                labeled.analysis.classes.class(site.var),
                                VarClass::ReadOnly,
                                "{} {}: idempotent indirect read {} outside \
                                 the read-only escape",
                                bench.name,
                                region.loop_label,
                                site.id
                            );
                        }
                    }
                }
            }
        }
    }
    assert!(
        indirect_seen > 0,
        "the suite must exercise indirect references"
    );
}

#[test]
fn generated_irregular_corpus_obeys_the_indirect_invariant() {
    // The same property over the testkit generator's corpus: seeds with
    // indirection arrays or WHILE regions must never label an indirect
    // write idempotent, and an idempotent indirect read needs the
    // read-only escape.
    let mut irregular_programs = 0usize;
    for seed in 0..256u64 {
        let g = refidem_testkit::generate(seed);
        if !g.spec.has_irregular() && !g.spec.has_while() {
            continue;
        }
        irregular_programs += 1;
        for region in &g.regions {
            let labeled = label_program_region(&g.program, region).expect("analyzes");
            for site in labeled.analysis.table.sites() {
                if !is_indirect(site) {
                    continue;
                }
                match site.access {
                    AccessKind::Write => {
                        assert_eq!(
                            labeled.labeling.label(site.id),
                            Label::Speculative,
                            "seed {}: indirect write {} in {} must be speculative",
                            seed,
                            site.id,
                            region.loop_label
                        );
                    }
                    AccessKind::Read => {
                        if labeled.labeling.is_idempotent(site.id) {
                            assert_eq!(
                                labeled.analysis.classes.class(site.var),
                                VarClass::ReadOnly,
                                "seed {}: idempotent indirect read {} in {} \
                                 outside the read-only escape",
                                seed,
                                site.id,
                                region.loop_label
                            );
                        }
                    }
                }
            }
        }
    }
    assert!(
        irregular_programs >= 32,
        "only {irregular_programs} of 256 seeds were irregular"
    );
}

#[test]
fn parallelizable_regions_are_a_superset_of_fully_independent_ones() {
    let mut fully_independent = 0usize;
    let mut parallelizable = 0usize;
    for bench in all_benchmarks() {
        for region in bench.regions() {
            let labeled = label_program_region(&bench.program, &region).expect("analyzes");
            if labeled.analysis.fully_independent {
                fully_independent += 1;
                assert!(
                    labeled.analysis.compiler_parallelizable,
                    "{} {}: fully independent but not parallelizable",
                    bench.name, region.loop_label
                );
            }
            if labeled.analysis.compiler_parallelizable {
                parallelizable += 1;
            }
        }
    }
    assert!(fully_independent > 0);
    assert!(parallelizable >= fully_independent);
}
