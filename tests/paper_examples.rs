//! End-to-end checks of the paper's worked examples (Figures 1–4), driven
//! through the facade crate exactly as a downstream user would.

use refidem::core::label::{label_abstract_region, label_program_region, IdemCategory, Label};
use refidem::core::model::SegmentId;
use refidem::core::rfw::rfw_for_abstract;
use refidem::ir::sites::AccessKind;
use refidem_benchmarks::examples;

#[test]
fn figure1_introductory_example() {
    let region = examples::figure1();
    let labeling = label_abstract_region(&region);
    let s1 = SegmentId(0);
    let s2 = SegmentId(1);
    // B read-only everywhere; C private to segment 2; the write to A in
    // segment 1 idempotent; the read of A in segment 2 speculative.
    assert_eq!(
        labeling
            .label(region.find_ref(s1, "B", AccessKind::Read).unwrap())
            .category(),
        Some(IdemCategory::ReadOnly)
    );
    assert_eq!(
        labeling
            .label(region.find_ref(s2, "C", AccessKind::Write).unwrap())
            .category(),
        Some(IdemCategory::Private)
    );
    assert!(labeling.is_idempotent(region.find_ref(s1, "A", AccessKind::Write).unwrap()));
    assert_eq!(
        labeling.label(region.find_ref(s2, "A", AccessKind::Read).unwrap()),
        Label::Speculative
    );
}

#[test]
fn figure2_rfw_sets_and_labels() {
    let region = examples::figure2();
    let rfw = rfw_for_abstract(&region);
    let labeling = label_abstract_region(&region);
    let w = |seg: usize, var: &str| {
        region
            .find_ref(SegmentId(seg), var, AccessKind::Write)
            .unwrap()
    };
    // RFW sets as stated in the paper.
    let expected: &[(usize, &[&str])] = &[
        (0, &["C", "N", "J"]),
        (1, &["E", "J"]),
        (2, &["A"]),
        (3, &["A"]),
        (4, &["F"]),
    ];
    for (seg, vars) in expected {
        for var in *vars {
            assert!(
                rfw.contains(&w(*seg, var)),
                "RFW(R{seg}) must contain {var}"
            );
        }
    }
    // J in R1 and F in R4 are RFW but not idempotent; the A writes are both.
    assert_eq!(labeling.label(w(1, "J")), Label::Speculative);
    assert_eq!(labeling.label(w(4, "F")), Label::Speculative);
    assert!(labeling.is_idempotent(w(2, "A")));
    assert!(labeling.is_idempotent(w(3, "A")));
}

#[test]
fn figure3_coloring_via_rfw_sets() {
    let region = examples::figure3();
    let rfw = rfw_for_abstract(&region);
    let w = |seg: usize, var: &str| {
        region
            .find_ref(SegmentId(seg), var, AccessKind::Write)
            .unwrap()
    };
    // x: only the write in segment 1 is RFW; the writes in 6 and 7 are not.
    assert!(rfw.contains(&w(0, "x")));
    assert!(!rfw.contains(&w(5, "x")));
    assert!(!rfw.contains(&w(6, "x")));
    // y: every write is RFW.
    for seg in [1usize, 2, 3, 4, 5] {
        assert!(rfw.contains(&w(seg, "y")), "y write in segment {}", seg + 1);
    }
    // z: the write in segment 6 is not RFW.
    assert!(!rfw.contains(&w(5, "z")));
}

#[test]
fn figure4_buts_do1_labels_and_simulation() {
    let bench = examples::figure4();
    let labeled = label_program_region(&bench.program, &bench.region).expect("analyzes");
    let proc = &bench.program.procedures[bench.region.proc.index()];
    let v = proc.vars.lookup("v").unwrap();
    let v_sites: Vec<_> = labeled
        .analysis
        .table
        .sites()
        .iter()
        .filter(|s| s.var == v)
        .collect();
    // The S2 write stays speculative; the S1 reads are idempotent.
    let writes: Vec<_> = v_sites
        .iter()
        .filter(|s| s.access == AccessKind::Write)
        .collect();
    assert_eq!(writes.len(), 1);
    assert!(!labeled.labeling.is_idempotent(writes[0].id));
    let idempotent_reads = v_sites
        .iter()
        .filter(|s| s.access == AccessKind::Read && labeled.labeling.is_idempotent(s.id))
        .count();
    assert!(idempotent_reads >= 3, "the three S1 reads are idempotent");
    // The loop is not parallelizable but more than half of its references
    // are idempotent.
    assert!(!labeled.analysis.compiler_parallelizable);
    assert!(labeled.stats().idempotent_fraction() > 0.5);
}
