//! Property-based tests.
//!
//! * The dependence analysis is *sound*: whenever a brute-force enumeration
//!   of the iteration space finds a real cross-iteration dependence, the
//!   analysis reports one (it may additionally report spurious
//!   may-dependences — they only cost performance, never correctness).
//! * For arbitrary small loop programs, the labeling plus the CASE simulator
//!   produce exactly the sequential memory state (Lemma 2 end-to-end), HOSE
//!   likewise (Lemma 1), and the bounded speculative storage never exceeds
//!   its capacity.

use proptest::prelude::*;
use refidem::analysis::{DepScope, RegionAnalysis};
use refidem::core::label::label_program_region_by_name;
use refidem::ir::build::{ac, av, num, ProcBuilder};
use refidem::ir::expr::Expr;
use refidem::ir::program::Program;
use refidem::ir::sites::AccessKind;
use refidem::specsim::{simulate_region, verify_against_sequential, ExecMode, SimConfig};

// ---------------------------------------------------------------------------
// Property 1: dependence-analysis soundness against a brute-force oracle.
// ---------------------------------------------------------------------------

const ORACLE_LO: i64 = 2;
const ORACLE_HI: i64 = 12;

/// Builds `do k: a(c_w*k + d_w) = a(c_r*k + d_r) + 1` and returns the
/// program plus the (write, read) site ids.
fn oracle_program(cw: i64, dw: i64, cr: i64, dr: i64) -> (Program, refidem::ir::ids::RefId, refidem::ir::ids::RefId) {
    let mut b = ProcBuilder::new("oracle");
    let a = b.array("a", &[64]);
    let k = b.index("k");
    b.live_out(&[a]);
    let read_ref = b.aref(a, vec![refidem::ir::affine::AffineExpr::scaled_var(k, cr) + ac(dr)]);
    let read_id = read_ref.id;
    let rhs = refidem::ir::build::add(Expr::Load(read_ref), num(1.0));
    let write_ref = b.aref(a, vec![refidem::ir::affine::AffineExpr::scaled_var(k, cw) + ac(dw)]);
    let write_id = write_ref.id;
    let stmt = b.assign(write_ref, rhs);
    let region = b.do_loop_labeled("R", k, ac(ORACLE_LO), ac(ORACLE_HI), vec![stmt]);
    let mut p = Program::new("oracle");
    p.add_procedure(b.build(vec![region]));
    (p, write_id, read_id)
}

/// Brute force: does a cross-iteration dependence with the given source and
/// sink exist (source iteration strictly earlier)?
fn oracle_cross_dep(
    src: (i64, i64),
    snk: (i64, i64),
) -> bool {
    for ka in ORACLE_LO..=ORACLE_HI {
        for kb in (ka + 1)..=ORACLE_HI {
            if src.0 * ka + src.1 == snk.0 * kb + snk.1 {
                return true;
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn dependence_analysis_is_sound(
        cw in -2i64..=2,
        dw in -4i64..=4,
        cr in -2i64..=2,
        dr in -4i64..=4,
    ) {
        let (program, write_id, read_id) = oracle_program(cw, dw, cr, dr);
        let analysis = RegionAnalysis::analyze_labeled(&program, "R").expect("analyzes");
        // Real flow dependence: write in an earlier iteration, read later.
        if oracle_cross_dep((cw, dw), (cr, dr)) {
            prop_assert!(
                analysis.deps.deps_into(read_id).any(|d| d.source == write_id
                    && d.scope == DepScope::CrossSegment),
                "missed flow dependence for a({cw}k+{dw}) -> a({cr}k+{dr})"
            );
        }
        // Real anti dependence: read in an earlier iteration, write later.
        if oracle_cross_dep((cr, dr), (cw, dw)) {
            prop_assert!(
                analysis.deps.deps_into(write_id).any(|d| d.source == read_id
                    && d.scope == DepScope::CrossSegment),
                "missed anti dependence for a({cr}k+{dr}) -> a({cw}k+{dw})"
            );
        }
        // Real output dependence of the write with itself.
        if oracle_cross_dep((cw, dw), (cw, dw)) {
            prop_assert!(
                analysis.deps.deps_into(write_id).any(|d| d.source == write_id
                    && d.scope == DepScope::CrossSegment),
                "missed output dependence for a({cw}k+{dw})"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Property 2: end-to-end functional equivalence on random loop programs.
// ---------------------------------------------------------------------------

/// Where a generated statement stores its result.
#[derive(Clone, Debug)]
enum Target {
    A(i64),
    C(i64),
    S,
    T,
}

/// One operand of a generated right-hand side.
#[derive(Clone, Debug)]
enum Term {
    LoadA(i64),
    LoadB(i64),
    LoadC(i64),
    LoadS,
    LoadT,
    Const(i64),
    Index,
}

fn target_strategy() -> impl Strategy<Value = Target> {
    prop_oneof![
        (-1i64..=1).prop_map(Target::A),
        (-1i64..=1).prop_map(Target::C),
        Just(Target::S),
        Just(Target::T),
    ]
}

fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        (-1i64..=1).prop_map(Term::LoadA),
        (-1i64..=1).prop_map(Term::LoadB),
        (-1i64..=1).prop_map(Term::LoadC),
        Just(Term::LoadS),
        Just(Term::LoadT),
        (-3i64..=3).prop_map(Term::Const),
        Just(Term::Index),
    ]
}

fn stmt_strategy() -> impl Strategy<Value = (Target, Vec<Term>)> {
    (target_strategy(), proptest::collection::vec(term_strategy(), 1..=3))
}

fn build_random_program(stmts: &[(Target, Vec<Term>)]) -> Program {
    let mut b = ProcBuilder::new("random");
    let a = b.array("a", &[24]);
    let arr_b = b.array("b", &[24]);
    let c = b.array("c", &[24]);
    let s = b.scalar("s");
    let t = b.scalar("t");
    let k = b.index("k");
    b.live_out(&[a, c, s, t]);
    let mut body = Vec::new();
    for (target, terms) in stmts {
        let mut rhs: Option<Expr> = None;
        for term in terms {
            let e = match term {
                Term::LoadA(off) => b.load_elem(a, vec![av(k) + ac(*off)]),
                Term::LoadB(off) => b.load_elem(arr_b, vec![av(k) + ac(*off)]),
                Term::LoadC(off) => b.load_elem(c, vec![av(k) + ac(*off)]),
                Term::LoadS => b.load(s),
                Term::LoadT => b.load(t),
                Term::Const(v) => num(*v as f64 * 0.5),
                Term::Index => refidem::ir::build::idx(k),
            };
            rhs = Some(match rhs {
                None => e,
                Some(prev) => refidem::ir::build::add(prev, e),
            });
        }
        let rhs = rhs.expect("at least one term");
        let stmt = match target {
            Target::A(off) => b.assign_elem(a, vec![av(k) + ac(*off)], rhs),
            Target::C(off) => b.assign_elem(c, vec![av(k) + ac(*off)], rhs),
            Target::S => b.assign_scalar(s, rhs),
            Target::T => b.assign_scalar(t, rhs),
        };
        body.push(stmt);
    }
    let region = b.do_loop_labeled("R", k, ac(2), ac(16), body);
    let mut p = Program::new("random");
    p.add_procedure(b.build(vec![region]));
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_programs_execute_correctly_under_hose_and_case(
        stmts in proptest::collection::vec(stmt_strategy(), 1..=3),
        capacity in prop_oneof![Just(3usize), Just(8usize), Just(64usize)],
    ) {
        let program = build_random_program(&stmts);
        let labeled = label_program_region_by_name(&program, "R").expect("analyzes");
        let cfg = SimConfig::default().capacity(capacity);
        for mode in [ExecMode::Hose, ExecMode::Case] {
            let diffs = verify_against_sequential(&program, &labeled, mode, &cfg)
                .expect("simulation runs");
            prop_assert!(
                diffs.is_empty(),
                "{mode} with capacity {capacity} diverged at {} addresses (stmts: {stmts:?})",
                diffs.len()
            );
            let out = simulate_region(&program, &labeled, mode, &cfg).expect("runs");
            prop_assert!(out.report.spec_peak_occupancy <= capacity);
            prop_assert_eq!(out.report.commits as usize, out.report.segments);
        }
    }

    #[test]
    fn labels_are_consistent_between_runs(
        stmts in proptest::collection::vec(stmt_strategy(), 1..=3),
    ) {
        // Determinism: analyzing and labeling the same program twice gives
        // identical labels and statistics.
        let program = build_random_program(&stmts);
        let l1 = label_program_region_by_name(&program, "R").expect("analyzes");
        let l2 = label_program_region_by_name(&program, "R").expect("analyzes");
        prop_assert_eq!(&l1.labeling, &l2.labeling);
        // Writes labeled idempotent are never sinks of cross-segment deps.
        for site in l1.analysis.table.sites() {
            if site.access == AccessKind::Write
                && l1.labeling.is_idempotent(site.id)
                && !l1.labeling.fully_independent
                && l1.labeling.label(site.id).category()
                    != Some(refidem::core::label::IdemCategory::Private)
            {
                prop_assert!(!l1.analysis.deps.is_sink_of_cross_segment(site.id));
            }
        }
    }
}
