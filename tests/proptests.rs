//! Property-style tests, dependency-free.
//!
//! * The dependence analysis is *sound*: whenever a brute-force enumeration
//!   of the iteration space finds a real cross-iteration dependence, the
//!   analysis reports one (it may additionally report spurious
//!   may-dependences — they only cost performance, never correctness).
//!   The original proptest sampled this space; the grid is small enough to
//!   check **exhaustively** instead.
//! * For arbitrary small loop programs, the labeling plus the CASE simulator
//!   produce exactly the sequential memory state (Lemma 2 end-to-end), HOSE
//!   likewise (Lemma 1), and the bounded speculative storage never exceeds
//!   its capacity. Programs are drawn from `refidem-testkit`'s deterministic
//!   generator, so failures reproduce from a printed seed.

use refidem::analysis::{DepScope, RegionAnalysis};
use refidem::core::label::label_program_region_by_name;
use refidem::ir::build::{ac, num, ProcBuilder};
use refidem::ir::expr::Expr;
use refidem::ir::program::Program;
use refidem::ir::sites::AccessKind;
use refidem::specsim::{simulate_region, verify_against_sequential, ExecMode, SimConfig};
use refidem_testkit::{check_generated, generate, DiffConfig};

// ---------------------------------------------------------------------------
// Property 1: dependence-analysis soundness against a brute-force oracle.
// ---------------------------------------------------------------------------

const ORACLE_LO: i64 = 2;
const ORACLE_HI: i64 = 12;

/// Builds `do k: a(c_w*k + d_w) = a(c_r*k + d_r) + 1` and returns the
/// program plus the (write, read) site ids.
fn oracle_program(
    cw: i64,
    dw: i64,
    cr: i64,
    dr: i64,
) -> (Program, refidem::ir::ids::RefId, refidem::ir::ids::RefId) {
    let mut b = ProcBuilder::new("oracle");
    let a = b.array("a", &[64]);
    let k = b.index("k");
    b.live_out(&[a]);
    let read_ref = b.aref(
        a,
        vec![refidem::ir::affine::AffineExpr::scaled_var(k, cr) + ac(dr)],
    );
    let read_id = read_ref.id;
    let rhs = refidem::ir::build::add(Expr::Load(read_ref), num(1.0));
    let write_ref = b.aref(
        a,
        vec![refidem::ir::affine::AffineExpr::scaled_var(k, cw) + ac(dw)],
    );
    let write_id = write_ref.id;
    let stmt = b.assign(write_ref, rhs);
    let region = b.do_loop_labeled("R", k, ac(ORACLE_LO), ac(ORACLE_HI), vec![stmt]);
    let mut p = Program::new("oracle");
    p.add_procedure(b.build(vec![region]));
    (p, write_id, read_id)
}

/// Brute force: does a cross-iteration dependence with the given source and
/// sink exist (source iteration strictly earlier)?
fn oracle_cross_dep(src: (i64, i64), snk: (i64, i64)) -> bool {
    for ka in ORACLE_LO..=ORACLE_HI {
        for kb in (ka + 1)..=ORACLE_HI {
            if src.0 * ka + src.1 == snk.0 * kb + snk.1 {
                return true;
            }
        }
    }
    false
}

/// The paper's subscripts are 1-based and the layout clamps out-of-range
/// values, which would introduce aliasing the affine oracle cannot see:
/// restrict the exhaustive grid to coefficient/offset pairs whose subscripts
/// stay in `[1, 64]` over the whole iteration space.
fn oracle_in_bounds(c: i64, d: i64) -> bool {
    let ends = [c * ORACLE_LO + d, c * ORACLE_HI + d];
    ends.iter().all(|&v| (1..=64).contains(&v))
}

#[test]
fn dependence_analysis_is_sound_exhaustively() {
    let mut checked = 0u32;
    for cw in -2i64..=2 {
        for dw in -4i64..=30 {
            if !oracle_in_bounds(cw, dw) {
                continue;
            }
            for cr in -2i64..=2 {
                for dr in -4i64..=30 {
                    if !oracle_in_bounds(cr, dr) {
                        continue;
                    }
                    checked += 1;
                    let (program, write_id, read_id) = oracle_program(cw, dw, cr, dr);
                    let analysis =
                        RegionAnalysis::analyze_labeled(&program, "R").expect("analyzes");
                    // Real flow dependence: write earlier, read later.
                    if oracle_cross_dep((cw, dw), (cr, dr)) {
                        assert!(
                            analysis
                                .deps
                                .deps_into(read_id)
                                .any(|d| d.source == write_id && d.scope == DepScope::CrossSegment),
                            "missed flow dependence for a({cw}k+{dw}) -> a({cr}k+{dr})"
                        );
                    }
                    // Real anti dependence: read earlier, write later.
                    if oracle_cross_dep((cr, dr), (cw, dw)) {
                        assert!(
                            analysis
                                .deps
                                .deps_into(write_id)
                                .any(|d| d.source == read_id && d.scope == DepScope::CrossSegment),
                            "missed anti dependence for a({cr}k+{dr}) -> a({cw}k+{dw})"
                        );
                    }
                    // Real output dependence of the write with itself.
                    if oracle_cross_dep((cw, dw), (cw, dw)) {
                        assert!(
                            analysis
                                .deps
                                .deps_into(write_id)
                                .any(|d| d.source == write_id && d.scope == DepScope::CrossSegment),
                            "missed output dependence for a({cw}k+{dw})"
                        );
                    }
                }
            }
        }
    }
    assert!(checked > 2000, "grid unexpectedly small: {checked}");
}

// ---------------------------------------------------------------------------
// Property 2: end-to-end functional equivalence on random loop programs.
// ---------------------------------------------------------------------------

#[test]
fn random_programs_execute_correctly_under_hose_and_case() {
    // Seeds 5000.. are disjoint from the testkit's own integration suite,
    // so this exercises fresh shapes. check_generated runs HOSE and CASE
    // across the whole capacity ladder with byte-exact comparison plus
    // capacity and rollback invariants.
    for seed in 5000..5064 {
        let g = generate(seed);
        if let Err(f) = check_generated(&g, &DiffConfig::default()) {
            panic!("seed {seed} failed: {f}");
        }
    }
}

#[test]
fn labels_are_consistent_between_runs() {
    for seed in 6000..6032 {
        let g = generate(seed);
        for region in &g.regions {
            let label = region.loop_label.as_str();
            let l1 = label_program_region_by_name(&g.program, label).expect("analyzes");
            let l2 = label_program_region_by_name(&g.program, label).expect("analyzes");
            assert_eq!(
                &l1.labeling, &l2.labeling,
                "seed {seed} region {label}: labels differ"
            );
            // Writes labeled idempotent are never sinks of cross-segment deps.
            for site in l1.analysis.table.sites() {
                if site.access == AccessKind::Write
                    && l1.labeling.is_idempotent(site.id)
                    && !l1.labeling.fully_independent
                    && l1.labeling.label(site.id).category()
                        != Some(refidem::core::label::IdemCategory::Private)
                {
                    assert!(
                        !l1.analysis.deps.is_sink_of_cross_segment(site.id),
                        "seed {seed} region {label}: idempotent write {:?} is a cross-segment sink",
                        site.id
                    );
                }
            }
        }
    }
}

#[test]
fn capacity_is_never_exceeded_and_segments_all_commit() {
    for seed in 7000..7016 {
        let g = generate(seed);
        for region in &g.regions {
            let labeled =
                label_program_region_by_name(&g.program, &region.loop_label).expect("analyzes");
            for capacity in [3usize, 8, 64] {
                let cfg = SimConfig::default().capacity(capacity);
                for mode in [ExecMode::Hose, ExecMode::Case] {
                    let diffs = verify_against_sequential(&g.program, &labeled, mode, &cfg)
                        .expect("simulation runs");
                    assert!(
                        diffs.is_empty(),
                        "seed {seed}: {mode} with capacity {capacity} diverged at {} addresses",
                        diffs.len()
                    );
                    let out = simulate_region(&g.program, &labeled, mode, &cfg).expect("runs");
                    assert!(out.report.spec_peak_occupancy <= capacity);
                    assert_eq!(out.report.commits as usize, out.report.segments);
                    assert!(
                        (out.report.max_segment_restarts as u64)
                            <= out.report.rollbacks + out.report.overflow_stalls,
                        "seed {seed}: unpaid-for segment restarts"
                    );
                }
            }
        }
    }
}
