//! Stress: HOSE with a one-word speculative storage over every named
//! benchmark loop. Capacity 1 is the simulator's worst case — almost every
//! statement overflows, non-head segments stall, and the head makes
//! progress by writing through. The run must terminate (no livelock), stay
//! within capacity, commit every segment, and still match the sequential
//! interpretation.

use refidem::core::label::label_program_region;
use refidem::specsim::{simulate_region, verify_against_sequential, ExecMode, SimConfig};
use refidem_benchmarks::all_named_loops;

#[test]
fn capacity_one_hose_makes_forward_progress_on_every_named_loop() {
    let cfg = SimConfig::default().capacity(1);
    for bench in all_named_loops() {
        let labeled = label_program_region(&bench.program, &bench.region).expect("analyzes");
        // Forward progress: the engine returns instead of deadlocking or
        // exhausting the statement budget.
        let out = simulate_region(&bench.program, &labeled, ExecMode::Hose, &cfg)
            .unwrap_or_else(|e| panic!("{}: capacity-1 HOSE did not terminate: {e}", bench.name));
        let r = &out.report;
        assert!(
            r.spec_peak_occupancy <= 1,
            "{}: peak occupancy {} with capacity 1",
            bench.name,
            r.spec_peak_occupancy
        );
        assert_eq!(
            r.commits as usize, r.segments,
            "{}: every segment must commit exactly once",
            bench.name
        );
        assert!(r.segments > 0, "{}: no segments simulated", bench.name);
        // A one-word buffer must overflow on any loop whose segments touch
        // more than one address — all the named loops do.
        assert!(
            r.overflow_stalls + r.overflow_writethrough > 0,
            "{}: expected overflow events at capacity 1",
            bench.name
        );
        // And the result is still functionally correct (Lemma 1 under
        // maximal serialization pressure).
        let diffs = verify_against_sequential(&bench.program, &labeled, ExecMode::Hose, &cfg)
            .expect("verification runs");
        assert!(
            diffs.is_empty(),
            "{}: capacity-1 HOSE diverged at {} addresses (first: {:?})",
            bench.name,
            diffs.len(),
            diffs.first()
        );
    }
}

#[test]
fn capacity_one_case_is_also_sound_on_every_named_loop() {
    // CASE at capacity 1: idempotent references bypass the buffer, so the
    // pressure is lower, but the invariants are identical.
    let cfg = SimConfig::default().capacity(1);
    for bench in all_named_loops() {
        let labeled = label_program_region(&bench.program, &bench.region).expect("analyzes");
        let out = simulate_region(&bench.program, &labeled, ExecMode::Case, &cfg)
            .unwrap_or_else(|e| panic!("{}: capacity-1 CASE did not terminate: {e}", bench.name));
        assert!(out.report.spec_peak_occupancy <= 1, "{}", bench.name);
        assert_eq!(
            out.report.commits as usize, out.report.segments,
            "{}",
            bench.name
        );
        let diffs = verify_against_sequential(&bench.program, &labeled, ExecMode::Case, &cfg)
            .expect("verification runs");
        assert!(
            diffs.is_empty(),
            "{}: capacity-1 CASE diverged at {} addresses",
            bench.name,
            diffs.len()
        );
    }
}

#[test]
fn the_stress_sweep_covers_the_irregular_loops() {
    // The capacity-1 sweeps above run over `all_named_loops`; the
    // irregular trio (indirect gather/scatter, WHILE table walk, guarded
    // histogram) must be in that set — runtime-resolved addresses under a
    // one-word buffer are exactly the worst case this file exists for.
    let names: Vec<&str> = all_named_loops().iter().map(|b| b.name).collect();
    for name in ["IRREG GATHER_DO100", "IRREG WALK_DO200", "IRREG HIST_DO300"] {
        assert!(
            names.contains(&name),
            "{name} missing from the stress sweep: {names:?}"
        );
    }
}
